"""On-disk result cache making repeated exploration sweeps incremental.

The cache is one JSON file mapping :meth:`ExperimentSpec.key` digests to
result records (:meth:`SpecResult.to_record`).  Because the key is a content
hash of (kernel, config, compile options, analysis options, core count), a
sweep that shares design points with an earlier sweep — a refined grid, an
added kernel, a re-run after a crash — only simulates the new points.

The file format is versioned; a cache written by an incompatible version of
the tooling is discarded rather than trusted.  Writes are atomic (temp file
plus ``os.replace``) so a crashed sweep never corrupts previous results.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from ..errors import ExplorationError

#: Bump when the record format or the simulation semantics change in a way
#: that invalidates stored results.
#: v2: multicore design points run the interleaved co-simulation (arbiter /
#: slot_weights axes) and records carry the interference metrics.
CACHE_VERSION = 2


class ResultCache:
    """A persistent key -> record store for exploration results."""

    def __init__(self, path):
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self._entries: Optional[dict[str, dict]] = None
        self._dirty = False

    # ------------------------------------------------------------------
    # Loading and saving
    # ------------------------------------------------------------------

    def _load(self) -> dict[str, dict]:
        if self._entries is None:
            self._entries = {}
            if self.path.exists():
                try:
                    data = json.loads(self.path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError) as exc:
                    raise ExplorationError(
                        f"corrupt result cache {self.path}: {exc}") from exc
                if (isinstance(data, dict)
                        and data.get("version") == CACHE_VERSION
                        and isinstance(data.get("entries"), dict)):
                    self._entries = data["entries"]
        return self._entries

    def save(self) -> None:
        """Atomically persist the cache (no-op if nothing changed)."""
        if not self._dirty:
            return
        entries = self._load()
        payload = {"version": CACHE_VERSION,
                   "entries": {key: entries[key] for key in sorted(entries)}}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(self.path.parent),
                                        prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=1)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._dirty = False

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Look up one record, counting the hit or miss."""
        record = self._load().get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        self._load()[key] = record
        self._dirty = True

    def clear(self) -> None:
        self._entries = {}
        self._dirty = True

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()
