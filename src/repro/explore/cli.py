"""Command-line front end: ``python -m repro.explore``.

Example::

    python -m repro.explore --kernels vector_sum,fir_filter \\
        --axis method_cache_size=1024,2048,4096

Each ``--axis name=v1,v2,...`` adds one swept dimension (see
:mod:`repro.explore.space` for the accepted names); ``--kernels`` accepts
kernel names and suite names (``performance``, ``branchy``, ``all``).
Results are cached in ``--cache`` (default ``.explore-cache.json``) so a
repeated sweep reports cache hits instead of re-simulating.

Sweeps are durable by default: every cell state transition is journaled in
a run directory (``$REPRO_RUNS_DIR`` or ``~/.cache/repro/runs``), and a
killed or interrupted sweep resumes with ``--resume RUN_ID`` — the run id
alone rebuilds the sweep from the journal's metadata and re-executes only
the cells that never finished.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..errors import ReproError, SweepInterrupted
from ..jobs import TIMEOUT_CLASSES, RunDirectory
from .cache import ResultCache
from .pareto import DEFAULT_OBJECTIVES, Objective
from .runner import ExplorationRunner
from .space import ParameterSpace

_KNOWN_OBJECTIVES = {
    "wcet": Objective("wcet_cycles"),
    "wcet_cycles": Objective("wcet_cycles"),
    "cycles": Objective("cycles"),
    "fmax": Objective("fmax_mhz", maximize=True),
    "fmax_mhz": Objective("fmax_mhz", maximize=True),
    "stalls": Objective("stall_cycles"),
    "stall_cycles": Objective("stall_cycles"),
    "interference": Objective("arbitration_cycles"),
    "arbitration_cycles": Objective("arbitration_cycles"),
    "words": Objective("words_transferred"),
    "words_transferred": Objective("words_transferred"),
}


def coerce_value(text: str):
    """Parse one axis value: int, float, bool or bare string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text.strip()


def parse_axis(spec: str) -> tuple[str, list]:
    """Parse one ``--axis name=v1,v2,...`` argument."""
    name, sep, values = spec.partition("=")
    name = name.strip()
    if not sep or not name or not values.strip():
        raise argparse.ArgumentTypeError(
            f"axis must look like 'name=v1,v2,...', got {spec!r}")
    return name, [coerce_value(value) for value in values.split(",")]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Design-space exploration over the Patmos model: sweep "
                    "architecture and compiler parameters, collect cycle "
                    "counts and WCET bounds, report the Pareto frontier.")
    parser.add_argument("--kernels", default=None,
                        help="comma-separated kernel or suite names "
                             "(suites: performance, branchy, all); "
                             "required unless --resume is given")
    parser.add_argument("--axis", action="append", default=[],
                        type=parse_axis, metavar="NAME=V1,V2,...",
                        help="add one swept dimension; repeatable "
                             "(e.g. method_cache_size=1024,2048,4096; "
                             "multicore axes: cores=1,2,4, "
                             "arbiter=tdma,round_robin,priority, "
                             "slot_cycles=14,28, slot_weights=1:1:2:2 "
                             "with colon-separated per-core weights)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--resume", default=None, metavar="RUN_ID",
                        help="resume an interrupted sweep from its journal; "
                             "the run id alone rebuilds the sweep "
                             "(list runs with 'python -m repro.jobs list')")
    parser.add_argument("--runs-root", default=None, metavar="DIR",
                        help="root of the durable run directories (default: "
                             "$REPRO_RUNS_DIR or ~/.cache/repro/runs)")
    parser.add_argument("--no-journal", action="store_true",
                        help="skip the durable run journal (the sweep "
                             "cannot be resumed)")
    parser.add_argument("--timeout-class", default="unbounded",
                        choices=sorted(TIMEOUT_CLASSES),
                        help="per-cell wall-clock budget class "
                             "(default: unbounded)")
    parser.add_argument("--cache", default=".explore-cache.json",
                        metavar="PATH",
                        help="result cache file "
                             "(default: .explore-cache.json)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    parser.add_argument("--no-wcet", action="store_true",
                        help="skip the static WCET analysis")
    parser.add_argument("--no-pareto", action="store_true",
                        help="skip the Pareto-frontier summary")
    parser.add_argument("--objectives", default=None,
                        metavar="NAME[,NAME...]",
                        help="Pareto objectives (wcet, cycles, fmax, stalls, "
                             "interference, words; default: wcet,cycles,fmax)")
    return parser


def _objectives(arg: Optional[str], with_wcet: bool) -> tuple[Objective, ...]:
    if arg is None:
        if with_wcet:
            return DEFAULT_OBJECTIVES
        return tuple(obj for obj in DEFAULT_OBJECTIVES
                     if obj.name != "wcet_cycles")
    objectives = []
    for name in arg.split(","):
        name = name.strip().lower()
        if name not in _KNOWN_OBJECTIVES:
            raise ReproError(
                f"unknown objective {name!r}; choose from "
                f"{sorted(set(_KNOWN_OBJECTIVES))}")
        objectives.append(_KNOWN_OBJECTIVES[name])
    return tuple(objectives)


def _build_matrix(args) -> dict:
    """The sweep-defining matrix: what --resume must be able to rebuild."""
    kernels = [name.strip() for name in args.kernels.split(",")
               if name.strip()]
    return {"kernels": kernels,
            "axes": [[name, list(values)] for name, values in args.axis],
            "analyse_wcet": not args.no_wcet}


def _space_from_matrix(matrix: dict) -> ParameterSpace:
    space = ParameterSpace(list(matrix["kernels"]),
                           analyse_wcet=bool(matrix.get("analyse_wcet",
                                                        True)))
    for name, values in matrix.get("axes", []):
        space.axis(name, values)
    return space


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    run_dir = None
    try:
        if args.resume is not None and not args.resume.strip():
            # An empty id (e.g. a failed command substitution in CI) must
            # not silently degrade into a fresh full sweep.
            raise ReproError("--resume requires a run id")
        if args.resume:
            run_dir = RunDirectory.open(args.resume, root=args.runs_root)
            meta = run_dir.meta
            if meta.get("kind") != "explore":
                raise ReproError(
                    f"run {args.resume} is a {meta.get('kind')!r} run; "
                    f"resume it with python -m repro.{meta.get('kind')}")
            matrix = meta["matrix"]
        else:
            if not args.kernels:
                print("error: --kernels is required unless --resume is "
                      "given", file=sys.stderr)
                return 1
            matrix = _build_matrix(args)
        space = _space_from_matrix(matrix)
        analyse_wcet = bool(matrix.get("analyse_wcet", True))
        # Validate the objectives before the sweep so a typo fails fast
        # instead of after a potentially long simulation run.
        objectives = _objectives(args.objectives, analyse_wcet)

        cache = None if args.no_cache else ResultCache(args.cache)
        runner = ExplorationRunner(jobs=args.jobs, cache=cache,
                                   timeout_class=args.timeout_class)
        if args.resume:
            run_dir.mark_resumed(len(space))
            print(f"resuming run {run_dir.run_id}")
        elif not args.no_journal:
            run_dir = RunDirectory.create("explore", matrix,
                                          cells=len(space),
                                          root=args.runs_root)
            print(f"run id: {run_dir.run_id} "
                  f"(resume with --resume {run_dir.run_id})")
        print(f"exploring {len(space)} design points "
              f"({len(space.kernels)} kernels x "
              f"{len(space) // max(len(space.kernels), 1)} configurations)")
        outcome = runner.run(space, run_dir=run_dir,
                             resume=bool(args.resume))

        print()
        print(outcome.table())
        print()
        if not args.no_pareto:
            print(outcome.pareto_summary(objectives))
            print()
        print(outcome.summary())
        if cache is not None:
            print(f"result cache: {cache.path} ({len(cache)} entries)")
        if not outcome.ok:
            print()
            print(outcome.failure_summary(), file=sys.stderr)
            print(f"error: sweep completed with {len(outcome.failures)} "
                  f"failed design point(s); see the failure summary above",
                  file=sys.stderr)
            return 2
    except SweepInterrupted as exc:
        print(f"\ninterrupted: {exc}", file=sys.stderr)
        if exc.resume_argv:
            print(f"resume with: python -m repro.explore {exc.resume_argv}",
                  file=sys.stderr)
        return 130
    except (ReproError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 1
    finally:
        if run_dir is not None:
            run_dir.close()
    return 0
