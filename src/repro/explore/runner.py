"""Batch execution of exploration specs: worker pool, caching, collection.

``execute_spec`` runs one design point end to end — build the kernel, compile
it for the spec's configuration, simulate it cycle-accurately (strict mode,
output checked against the kernel's reference), analyse its WCET and estimate
the achievable clock — and returns a flat, JSON-serializable
:class:`SpecResult`.  It is a module-level function of one picklable argument
so :class:`ExplorationRunner` can ship it to a ``multiprocessing`` pool.

Everything in the model is deterministic, so a parallel sweep produces
byte-identical results to a serial one; the runner preserves spec order
regardless of completion order.

Failures are *contained*: a design point that raises a library error — or
whose pool worker dies outright — becomes a structured
:class:`~repro.errors.FailedCell` record instead of aborting the sweep.
Crashed workers are retried with capped backoff before being declared
poisoned; every other cell still completes and is cached.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable, Optional, Union

from ..cmp.system import MulticoreSystem
from ..compiler.passes import compile_and_link
from ..errors import (ExplorationError, FailedCell, SweepInterrupted)
from ..hw.pipeline import estimate_pipeline_timing
from ..jobs import JobCell, RetryPolicy, RunDirectory, run_jobs
from ..sim.cycle import CycleSimulator
from ..wcet.analyzer import analyze_wcet
from ..workloads.suite import build_kernel, resolve_kernels
from .cache import ResultCache
from .pareto import DEFAULT_OBJECTIVES, pareto_frontier, pareto_table
from .space import ExperimentSpec, ParameterSpace
from .tables import format_table


@dataclass
class SpecResult:
    """Collected metrics of one executed (or cache-recalled) design point."""

    key: str
    kernel: str
    parameters: dict
    cores: int
    cycles: int
    bundles: int
    instructions: int
    nops: int
    stall_cycles: int
    stalls: dict
    cache_stats: dict
    wcet_cycles: Optional[int]
    fmax_mhz: float
    arbiter: str = "tdma"
    #: System-wide memory-interference figures (summed over all cores for
    #: multicore points) so sweeps can rank designs by contention.
    arbitration_cycles: int = 0
    words_transferred: int = 0
    write_stall_cycles: int = 0
    #: Response-time analysis outcome of an RTOS task-set point (``None``
    #: for plain single-program points; absent in pre-RTOS cache records,
    #: which load with the default).
    rtos: Optional[dict] = None
    from_cache: bool = False

    @property
    def tightness(self) -> Optional[float]:
        """WCET bound over observed cycles (>= 1.0 for a sound bound)."""
        if self.wcet_cycles is None or self.cycles == 0:
            return None
        return self.wcet_cycles / self.cycles

    @property
    def wall_time_us(self) -> float:
        """Estimated wall-clock execution time at the estimated clock."""
        return self.cycles / self.fmax_mhz

    def to_record(self) -> dict:
        """JSON-serializable record (the cache's value format).

        ``from_cache`` is provenance of this in-memory object, not a property
        of the design point, so it is deliberately excluded.
        """
        record = asdict(self)
        del record["from_cache"]
        return record

    @classmethod
    def from_record(cls, record: dict, from_cache: bool = True) -> "SpecResult":
        return cls(**record, from_cache=from_cache)


def execute_spec(spec: ExperimentSpec) -> SpecResult:
    """Run one design point end to end (compile, simulate, analyse)."""
    if spec.rtos:
        return _execute_rtos_spec(spec)
    kernel = build_kernel(spec.kernel, **dict(spec.kernel_params))
    image, _ = compile_and_link(kernel.program, spec.config, spec.options)
    wcet_options = spec.wcet_options()

    if spec.cores == 1:
        # Sweeps are throughput-bound: the spec's engine defaults to the
        # pre-decoded micro-op engine ("fast"; "jit" for generated code);
        # equivalence to the reference interpreter is guaranteed by the
        # golden suite in tests/test_engine_equivalence.py.
        sim = CycleSimulator(image, config=spec.config, strict=True,
                             engine=spec.engine).run()
        _check_output(spec, sim.output, kernel.expected_output)
        metrics = sim.metrics()
        interference = {key: metrics[key] for key in (
            "arbitration_cycles", "words_transferred", "write_stall_cycles")}
        wcet = (analyze_wcet(image, spec.config, options=wcet_options)
                .wcet_cycles if spec.analyse_wcet else None)
    else:
        # Multicore points run the genuine interleaved co-simulation: one
        # shared memory, one shared arbiter, contention observed rather
        # than assumed.
        system = MulticoreSystem.homogeneous(
            image, spec.cores, spec.config, arbiter=spec.arbiter,
            schedule=spec.tdma_schedule(), mode="cosim",
            engine=spec.engine)
        cmp_result = system.run(analyse=False, strict=True)
        for core in cmp_result.cores:
            _check_output(spec, core.sim.output, kernel.expected_output)
        # The makespan is the figure of merit; per-bundle counts are
        # identical across cores, stalls come from the slowest core, and
        # the interference figures sum over the whole system.
        slowest = max(cmp_result.cores, key=lambda core: core.sim.cycles)
        metrics = slowest.sim.metrics()
        metrics["cycles"] = cmp_result.makespan
        interference = cmp_result.system_stats()["totals"]
        # The spec-level bound must cover the reported cycles (the
        # makespan).  TDMA: co-runner-independent, one analysis covers
        # every core.  Round-robin: every core shares the (N-1)-transfers
        # bound, so it also bounds the makespan.  Priority: only the top
        # core is analysable, so the makespan has *no* bound — report None
        # (per-core bounds remain available via MulticoreSystem.run).
        wcet = (analyze_wcet(image, spec.config, options=wcet_options)
                .wcet_cycles
                if spec.analyse_wcet and spec.arbiter != "priority"
                else None)

    timing = estimate_pipeline_timing(
        dual_issue=spec.config.pipeline.dual_issue)
    return SpecResult(
        key=spec.key(),
        kernel=spec.kernel,
        parameters=dict(spec.parameters),
        cores=spec.cores,
        cycles=metrics["cycles"],
        bundles=metrics["bundles"],
        instructions=metrics["instructions"],
        nops=metrics["nops"],
        stall_cycles=metrics["stall_cycles"],
        stalls=metrics["stalls"],
        cache_stats=metrics["cache_stats"],
        wcet_cycles=wcet,
        fmax_mhz=round(timing.max_frequency_mhz, 3),
        arbiter=spec.arbiter,
        arbitration_cycles=interference["arbitration_cycles"],
        words_transferred=interference["words_transferred"],
        write_stall_cycles=interference["write_stall_cycles"],
    )


def _execute_rtos_spec(spec: ExperimentSpec) -> SpecResult:
    """Run an RTOS task-set design point (see the rtos axes in ``space``).

    The figure of merit stays the makespan; the ``rtos`` record adds the
    task-set view — jobs, preemptions, deadline misses and above all the
    response-time analysis outcome.  A task whose observed response time
    exceeds its analytical bound fails the sweep, the same way a functional
    mismatch does: an unsound point must never enter a result cache.
    """
    from ..rtos.system import RtosSystem
    from ..rtos.task import synthesize_tasksets

    params = dict(spec.rtos)
    seed = int(params.get("seed", 0))
    bodies = resolve_kernels(
        str(params.get("bodies", "rtos")).split(":"))
    tasksets = synthesize_tasksets(
        spec.cores, int(params.get("tasks_per_core", 3)),
        utilisation=float(params.get("utilisation", 0.4)),
        period_spread=float(params.get("period_spread", 2.0)),
        priority_assignment=str(params.get("priority_assignment",
                                           "rate_monotonic")),
        seed=seed, config=spec.config, bodies=bodies)
    system = RtosSystem(
        tasksets, config=spec.config, arbiter=spec.arbiter,
        schedule=spec.tdma_schedule(), engine=spec.engine,
        policy=str(params.get("policy", "fixed_priority")), seed=seed)
    rtos_result = system.run(analyse=spec.analyse_wcet, strict=True)
    violations = rtos_result.violations()
    if violations:
        task = violations[0]
        raise ExplorationError(
            f"{spec.label()}: unsound response-time bound — task "
            f"{task.name} observed {task.max_response} > {task.rta_bound}")

    runtimes = system._runtimes
    metrics = max((runtime.result().metrics() for runtime in runtimes),
                  key=lambda m: m["cycles"])
    metrics["cycles"] = rtos_result.makespan
    interference = {"arbitration_cycles": 0, "words_transferred": 0,
                    "write_stall_cycles": 0}
    for runtime in runtimes:
        core_metrics = runtime.result().metrics()
        for key in interference:
            interference[key] += core_metrics[key]

    timing = estimate_pipeline_timing(
        dual_issue=spec.config.pipeline.dual_issue)
    return SpecResult(
        key=spec.key(),
        kernel=spec.kernel,
        parameters=dict(spec.parameters),
        cores=spec.cores,
        cycles=metrics["cycles"],
        bundles=metrics["bundles"],
        instructions=metrics["instructions"],
        nops=metrics["nops"],
        stall_cycles=metrics["stall_cycles"],
        stalls=metrics["stalls"],
        cache_stats=metrics["cache_stats"],
        wcet_cycles=None,
        fmax_mhz=round(timing.max_frequency_mhz, 3),
        arbiter=spec.arbiter,
        arbitration_cycles=interference["arbitration_cycles"],
        words_transferred=interference["words_transferred"],
        write_stall_cycles=interference["write_stall_cycles"],
        rtos={
            "policy": rtos_result.policy,
            "tasks": len(rtos_result.tasks),
            "jobs_completed": sum(t.completed for t in rtos_result.tasks),
            "deadline_misses": sum(t.deadline_misses
                                   for t in rtos_result.tasks),
            "bounded_tasks": sum(1 for t in rtos_result.tasks
                                 if t.rta_bound is not None),
            "violations": 0,
            "max_response": max((t.max_response for t in rtos_result.tasks
                                 if t.max_response is not None),
                                default=None),
            "idle_cycles": sum(row["idle_cycles"]
                               for row in rtos_result.per_core),
        })


def _check_output(spec: ExperimentSpec, observed: list[int],
                  expected: list[int]) -> None:
    if observed != expected:
        raise ExplorationError(
            f"{spec.label()}: functional mismatch — simulated output "
            f"{observed[:4]}... differs from reference {expected[:4]}...")


def _spec_worker(spec: ExperimentSpec) -> SpecResult:
    """Pool entry point: one indirection through the module global.

    Workers call the *current* ``execute_spec`` binding rather than a
    pickled copy, so a forked child inherits any replacement installed in
    the parent — which is how the crash-containment tests plant a worker
    that dies mid-cell.
    """
    return execute_spec(spec)


@dataclass
class ExplorationResult:
    """All results of one sweep, in spec order, plus cache accounting.

    ``results`` holds only the completed design points; cells that failed
    (raised a library error, or crashed their worker past the retry budget)
    appear as :class:`~repro.errors.FailedCell` records in ``failures``
    instead.  ``ok`` is False whenever any cell failed — the CLI turns that
    into a non-zero exit after printing the failure summary.
    """

    results: list[SpecResult] = field(default_factory=list)
    failures: list[FailedCell] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def __len__(self) -> int:
        return len(self.results)

    def to_records(self) -> list[dict]:
        return [result.to_record() for result in self.results]

    def frontier(self, objectives=DEFAULT_OBJECTIVES) -> list[SpecResult]:
        """The Pareto-optimal design points of this sweep."""
        return pareto_frontier(self.results, objectives)

    def table(self) -> str:
        """Aligned per-spec results table."""
        headers = ["design point", "cores", "cycles", "WCET", "bound/obs",
                   "fmax MHz", "cached"]
        rows = []
        for result in self.results:
            params = ", ".join(f"{k}={v}"
                               for k, v in result.parameters.items())
            label = result.kernel + (f" [{params}]" if params else "")
            tightness = (f"{result.tightness:.2f}"
                         if result.tightness is not None else "-")
            rows.append([label, result.cores, result.cycles,
                         result.wcet_cycles if result.wcet_cycles is not None
                         else "-",
                         tightness, f"{result.fmax_mhz:.1f}",
                         "yes" if result.from_cache else "no"])
        return format_table(headers, rows)

    def pareto_summary(self, objectives=DEFAULT_OBJECTIVES) -> str:
        return pareto_table(self.results, objectives)

    def failure_summary(self) -> str:
        """One line per failed cell (empty string when the sweep is clean)."""
        if not self.failures:
            return ""
        lines = [f"{len(self.failures)} design point(s) FAILED:"]
        lines.extend(f"  {cell.summary()}" for cell in self.failures)
        return "\n".join(lines)

    def summary(self) -> str:
        executed = self.cache_misses
        failed = (f", {len(self.failures)} failed" if self.failures else "")
        return (f"{len(self.results)} design points in {self.elapsed_s:.2f}s "
                f"({self.cache_hits} cache hits, {executed} executed"
                f"{failed})")


class ExplorationRunner:
    """Execute a parameter space with optional parallelism and caching.

    Cells execute through the shared :mod:`repro.jobs` engine under one
    declarative :class:`~repro.jobs.RetryPolicy`: ``max_retries`` bounds how
    often one cell is re-leased after its worker dies (a cell that keeps
    killing workers is declared poisoned and recorded as a
    :class:`~repro.errors.FailedCell`); ``retry_backoff_s`` is the base of
    the deterministic capped exponential pause between crash-recovery
    attempts, giving a transiently starved machine room to recover;
    ``timeout_class`` names the per-cell wall-clock budget
    (see :data:`repro.jobs.TIMEOUT_CLASSES`).
    """

    #: Longest pause between crash-recovery rounds, in seconds.
    MAX_BACKOFF_S = 2.0

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 max_retries: int = 2, retry_backoff_s: float = 0.05,
                 timeout_class: str = "unbounded"):
        if jobs < 1:
            raise ExplorationError("jobs must be >= 1")
        if max_retries < 0:
            raise ExplorationError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ExplorationError("retry_backoff_s must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.timeout_class = timeout_class

    def policy(self) -> RetryPolicy:
        """The declarative retry policy this runner executes under."""
        return RetryPolicy(max_attempts=self.max_retries + 1,
                           backoff_base_s=self.retry_backoff_s,
                           backoff_cap_s=self.MAX_BACKOFF_S,
                           timeout_class=self.timeout_class)

    def run(self, space: Union[ParameterSpace, Iterable[ExperimentSpec]],
            run_dir: Optional[RunDirectory] = None,
            resume: bool = False) -> ExplorationResult:
        """Run every spec, recalling cached design points where possible.

        With a ``run_dir`` the sweep is durable: every cell state transition
        lands in the run's journal, and ``resume=True`` replays it first so
        cells recorded ``done`` are injected instead of re-executed (their
        journaled payload is the full result record, so a resumed report is
        byte-identical — modulo elapsed time — to an uninterrupted one).
        On SIGINT/SIGTERM the sweep drains gracefully and raises
        :class:`~repro.errors.SweepInterrupted` carrying the resume command.
        """
        specs = (space.specs() if isinstance(space, ParameterSpace)
                 else list(space))
        started = time.perf_counter()
        results: list[Optional[SpecResult]] = [None] * len(specs)
        failures: list[FailedCell] = []
        pending: list[tuple[int, ExperimentSpec]] = []
        #: Later indices whose spec resolves to the same content as an
        #: earlier pending one (e.g. single-core points of an arbiter
        #: sweep): simulated once, result (or failure) shared.
        duplicates: dict[str, list[tuple[int, ExperimentSpec]]] = {}
        pending_keys: set[str] = set()
        hits = 0

        for index, spec in enumerate(specs):
            key = spec.key()
            record = self.cache.get(key) if self.cache else None
            if record is not None:
                results[index] = self._labelled(
                    SpecResult.from_record(record), spec)
                hits += 1
            elif key in pending_keys:
                duplicates.setdefault(key, []).append((index, spec))
            else:
                pending.append((index, spec))
                pending_keys.add(key)

        index_of = {spec.key(): index for index, spec in pending}

        def apply_result(result: SpecResult) -> None:
            results[index_of[result.key]] = result
            for dup_index, dup_spec in duplicates.get(result.key, ()):
                # Shared with a point executed in this very run, so it is
                # not a cache recall.
                results[dup_index] = self._labelled(
                    SpecResult.from_record(result.to_record(),
                                           from_cache=False), dup_spec)
            if self.cache is not None:
                self.cache.put(result.key, result.to_record())

        replay = run_dir.replay() if (run_dir is not None and resume) \
            else None
        to_run: list[tuple[int, ExperimentSpec]] = []
        for index, spec in pending:
            key = spec.key()
            if replay is not None and replay.done.get(key) is not None:
                apply_result(self._labelled(
                    SpecResult.from_record(replay.done[key],
                                           from_cache=False), spec))
            else:
                to_run.append((index, spec))

        # Cache every completed design point as it arrives and persist even
        # when the sweep is interrupted, so a re-run is incremental.  Failed
        # cells are never cached (nor journaled as done) — a retry must
        # actually re-execute them.
        try:
            outcome = run_jobs(
                [JobCell(key=spec.key(), label=spec.label(), payload=spec)
                 for _, spec in to_run],
                _spec_worker, jobs=self.jobs, policy=self.policy(),
                journal=run_dir.journal() if run_dir is not None else None,
                contain=lambda error: error.is_repro,
                encode=lambda result: result.to_record(),
                on_result=lambda cell, result: apply_result(result))
            for cell in outcome.failures:
                failures.append(cell)
                failures.extend(
                    replace(cell, label=dup_spec.label())
                    for _, dup_spec in duplicates.get(cell.key, ()))
        finally:
            if self.cache is not None:
                self.cache.save()

        if outcome.interrupted:
            raise self._interrupted(run_dir)

        return ExplorationResult(
            results=[result for result in results if result is not None],
            failures=failures,
            cache_hits=hits,
            cache_misses=len(pending),
            elapsed_s=time.perf_counter() - started,
        )

    @staticmethod
    def _interrupted(run_dir: Optional[RunDirectory]) -> SweepInterrupted:
        if run_dir is None:
            return SweepInterrupted(
                "sweep interrupted; completed cells are cached but the run "
                "was not journaled (no run directory)")
        resume_argv = f"--resume {run_dir.run_id}"
        return SweepInterrupted(
            f"sweep interrupted; journal flushed — resume with: "
            f"python -m repro.explore {resume_argv}",
            run_id=run_dir.run_id, resume_argv=resume_argv)

    @staticmethod
    def _labelled(result: SpecResult, spec: ExperimentSpec) -> SpecResult:
        """Attach the requesting spec's display parameters to a recalled
        result, so a shared cache entry never mislabels a design point."""
        result.parameters = dict(spec.parameters)
        return result
