"""Batch execution of exploration specs: worker pool, caching, collection.

``execute_spec`` runs one design point end to end — build the kernel, compile
it for the spec's configuration, simulate it cycle-accurately (strict mode,
output checked against the kernel's reference), analyse its WCET and estimate
the achievable clock — and returns a flat, JSON-serializable
:class:`SpecResult`.  It is a module-level function of one picklable argument
so :class:`ExplorationRunner` can ship it to a ``multiprocessing`` pool.

Everything in the model is deterministic, so a parallel sweep produces
byte-identical results to a serial one; the runner preserves spec order
regardless of completion order.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Union

from ..cmp.system import MulticoreSystem
from ..compiler.passes import compile_and_link
from ..errors import ExplorationError
from ..hw.pipeline import estimate_pipeline_timing
from ..sim.cycle import CycleSimulator
from ..wcet.analyzer import analyze_wcet
from ..workloads.suite import build_kernel, resolve_kernels
from .cache import ResultCache
from .pareto import DEFAULT_OBJECTIVES, pareto_frontier, pareto_table
from .space import ExperimentSpec, ParameterSpace
from .tables import format_table


@dataclass
class SpecResult:
    """Collected metrics of one executed (or cache-recalled) design point."""

    key: str
    kernel: str
    parameters: dict
    cores: int
    cycles: int
    bundles: int
    instructions: int
    nops: int
    stall_cycles: int
    stalls: dict
    cache_stats: dict
    wcet_cycles: Optional[int]
    fmax_mhz: float
    arbiter: str = "tdma"
    #: System-wide memory-interference figures (summed over all cores for
    #: multicore points) so sweeps can rank designs by contention.
    arbitration_cycles: int = 0
    words_transferred: int = 0
    write_stall_cycles: int = 0
    #: Response-time analysis outcome of an RTOS task-set point (``None``
    #: for plain single-program points; absent in pre-RTOS cache records,
    #: which load with the default).
    rtos: Optional[dict] = None
    from_cache: bool = False

    @property
    def tightness(self) -> Optional[float]:
        """WCET bound over observed cycles (>= 1.0 for a sound bound)."""
        if self.wcet_cycles is None or self.cycles == 0:
            return None
        return self.wcet_cycles / self.cycles

    @property
    def wall_time_us(self) -> float:
        """Estimated wall-clock execution time at the estimated clock."""
        return self.cycles / self.fmax_mhz

    def to_record(self) -> dict:
        """JSON-serializable record (the cache's value format).

        ``from_cache`` is provenance of this in-memory object, not a property
        of the design point, so it is deliberately excluded.
        """
        record = asdict(self)
        del record["from_cache"]
        return record

    @classmethod
    def from_record(cls, record: dict, from_cache: bool = True) -> "SpecResult":
        return cls(**record, from_cache=from_cache)


def execute_spec(spec: ExperimentSpec) -> SpecResult:
    """Run one design point end to end (compile, simulate, analyse)."""
    if spec.rtos:
        return _execute_rtos_spec(spec)
    kernel = build_kernel(spec.kernel, **dict(spec.kernel_params))
    image, _ = compile_and_link(kernel.program, spec.config, spec.options)
    wcet_options = spec.wcet_options()

    if spec.cores == 1:
        # Sweeps are throughput-bound: always use the pre-decoded engine
        # (repro.sim.engine); its equivalence to the reference interpreter is
        # guaranteed by the golden suite in tests/test_engine_equivalence.py.
        sim = CycleSimulator(image, config=spec.config, strict=True,
                             engine="fast").run()
        _check_output(spec, sim.output, kernel.expected_output)
        metrics = sim.metrics()
        interference = {key: metrics[key] for key in (
            "arbitration_cycles", "words_transferred", "write_stall_cycles")}
        wcet = (analyze_wcet(image, spec.config, options=wcet_options)
                .wcet_cycles if spec.analyse_wcet else None)
    else:
        # Multicore points run the genuine interleaved co-simulation: one
        # shared memory, one shared arbiter, contention observed rather
        # than assumed.
        system = MulticoreSystem.homogeneous(
            image, spec.cores, spec.config, arbiter=spec.arbiter,
            schedule=spec.tdma_schedule(), mode="cosim")
        cmp_result = system.run(analyse=False, strict=True)
        for core in cmp_result.cores:
            _check_output(spec, core.sim.output, kernel.expected_output)
        # The makespan is the figure of merit; per-bundle counts are
        # identical across cores, stalls come from the slowest core, and
        # the interference figures sum over the whole system.
        slowest = max(cmp_result.cores, key=lambda core: core.sim.cycles)
        metrics = slowest.sim.metrics()
        metrics["cycles"] = cmp_result.makespan
        interference = cmp_result.system_stats()["totals"]
        # The spec-level bound must cover the reported cycles (the
        # makespan).  TDMA: co-runner-independent, one analysis covers
        # every core.  Round-robin: every core shares the (N-1)-transfers
        # bound, so it also bounds the makespan.  Priority: only the top
        # core is analysable, so the makespan has *no* bound — report None
        # (per-core bounds remain available via MulticoreSystem.run).
        wcet = (analyze_wcet(image, spec.config, options=wcet_options)
                .wcet_cycles
                if spec.analyse_wcet and spec.arbiter != "priority"
                else None)

    timing = estimate_pipeline_timing(
        dual_issue=spec.config.pipeline.dual_issue)
    return SpecResult(
        key=spec.key(),
        kernel=spec.kernel,
        parameters=dict(spec.parameters),
        cores=spec.cores,
        cycles=metrics["cycles"],
        bundles=metrics["bundles"],
        instructions=metrics["instructions"],
        nops=metrics["nops"],
        stall_cycles=metrics["stall_cycles"],
        stalls=metrics["stalls"],
        cache_stats=metrics["cache_stats"],
        wcet_cycles=wcet,
        fmax_mhz=round(timing.max_frequency_mhz, 3),
        arbiter=spec.arbiter,
        arbitration_cycles=interference["arbitration_cycles"],
        words_transferred=interference["words_transferred"],
        write_stall_cycles=interference["write_stall_cycles"],
    )


def _execute_rtos_spec(spec: ExperimentSpec) -> SpecResult:
    """Run an RTOS task-set design point (see the rtos axes in ``space``).

    The figure of merit stays the makespan; the ``rtos`` record adds the
    task-set view — jobs, preemptions, deadline misses and above all the
    response-time analysis outcome.  A task whose observed response time
    exceeds its analytical bound fails the sweep, the same way a functional
    mismatch does: an unsound point must never enter a result cache.
    """
    from ..rtos.system import RtosSystem
    from ..rtos.task import synthesize_tasksets

    params = dict(spec.rtos)
    seed = int(params.get("seed", 0))
    bodies = resolve_kernels(
        str(params.get("bodies", "rtos")).split(":"))
    tasksets = synthesize_tasksets(
        spec.cores, int(params.get("tasks_per_core", 3)),
        utilisation=float(params.get("utilisation", 0.4)),
        period_spread=float(params.get("period_spread", 2.0)),
        priority_assignment=str(params.get("priority_assignment",
                                           "rate_monotonic")),
        seed=seed, config=spec.config, bodies=bodies)
    system = RtosSystem(
        tasksets, config=spec.config, arbiter=spec.arbiter,
        schedule=spec.tdma_schedule(),
        policy=str(params.get("policy", "fixed_priority")), seed=seed)
    rtos_result = system.run(analyse=spec.analyse_wcet, strict=True)
    violations = rtos_result.violations()
    if violations:
        task = violations[0]
        raise ExplorationError(
            f"{spec.label()}: unsound response-time bound — task "
            f"{task.name} observed {task.max_response} > {task.rta_bound}")

    runtimes = system._runtimes
    metrics = max((runtime.result().metrics() for runtime in runtimes),
                  key=lambda m: m["cycles"])
    metrics["cycles"] = rtos_result.makespan
    interference = {"arbitration_cycles": 0, "words_transferred": 0,
                    "write_stall_cycles": 0}
    for runtime in runtimes:
        core_metrics = runtime.result().metrics()
        for key in interference:
            interference[key] += core_metrics[key]

    timing = estimate_pipeline_timing(
        dual_issue=spec.config.pipeline.dual_issue)
    return SpecResult(
        key=spec.key(),
        kernel=spec.kernel,
        parameters=dict(spec.parameters),
        cores=spec.cores,
        cycles=metrics["cycles"],
        bundles=metrics["bundles"],
        instructions=metrics["instructions"],
        nops=metrics["nops"],
        stall_cycles=metrics["stall_cycles"],
        stalls=metrics["stalls"],
        cache_stats=metrics["cache_stats"],
        wcet_cycles=None,
        fmax_mhz=round(timing.max_frequency_mhz, 3),
        arbiter=spec.arbiter,
        arbitration_cycles=interference["arbitration_cycles"],
        words_transferred=interference["words_transferred"],
        write_stall_cycles=interference["write_stall_cycles"],
        rtos={
            "policy": rtos_result.policy,
            "tasks": len(rtos_result.tasks),
            "jobs_completed": sum(t.completed for t in rtos_result.tasks),
            "deadline_misses": sum(t.deadline_misses
                                   for t in rtos_result.tasks),
            "bounded_tasks": sum(1 for t in rtos_result.tasks
                                 if t.rta_bound is not None),
            "violations": 0,
            "max_response": max((t.max_response for t in rtos_result.tasks
                                 if t.max_response is not None),
                                default=None),
            "idle_cycles": sum(row["idle_cycles"]
                               for row in rtos_result.per_core),
        })


def _check_output(spec: ExperimentSpec, observed: list[int],
                  expected: list[int]) -> None:
    if observed != expected:
        raise ExplorationError(
            f"{spec.label()}: functional mismatch — simulated output "
            f"{observed[:4]}... differs from reference {expected[:4]}...")


@dataclass
class ExplorationResult:
    """All results of one sweep, in spec order, plus cache accounting."""

    results: list[SpecResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def to_records(self) -> list[dict]:
        return [result.to_record() for result in self.results]

    def frontier(self, objectives=DEFAULT_OBJECTIVES) -> list[SpecResult]:
        """The Pareto-optimal design points of this sweep."""
        return pareto_frontier(self.results, objectives)

    def table(self) -> str:
        """Aligned per-spec results table."""
        headers = ["design point", "cores", "cycles", "WCET", "bound/obs",
                   "fmax MHz", "cached"]
        rows = []
        for result in self.results:
            params = ", ".join(f"{k}={v}"
                               for k, v in result.parameters.items())
            label = result.kernel + (f" [{params}]" if params else "")
            tightness = (f"{result.tightness:.2f}"
                         if result.tightness is not None else "-")
            rows.append([label, result.cores, result.cycles,
                         result.wcet_cycles if result.wcet_cycles is not None
                         else "-",
                         tightness, f"{result.fmax_mhz:.1f}",
                         "yes" if result.from_cache else "no"])
        return format_table(headers, rows)

    def pareto_summary(self, objectives=DEFAULT_OBJECTIVES) -> str:
        return pareto_table(self.results, objectives)

    def summary(self) -> str:
        executed = self.cache_misses
        return (f"{len(self.results)} design points in {self.elapsed_s:.2f}s "
                f"({self.cache_hits} cache hits, {executed} executed)")


class ExplorationRunner:
    """Execute a parameter space with optional parallelism and caching."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ExplorationError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache

    def run(self, space: Union[ParameterSpace, Iterable[ExperimentSpec]]
            ) -> ExplorationResult:
        """Run every spec, recalling cached design points where possible."""
        specs = (space.specs() if isinstance(space, ParameterSpace)
                 else list(space))
        started = time.perf_counter()
        results: list[Optional[SpecResult]] = [None] * len(specs)
        pending: list[tuple[int, ExperimentSpec]] = []
        #: Later indices whose spec resolves to the same content as an
        #: earlier pending one (e.g. single-core points of an arbiter
        #: sweep): simulated once, result shared.
        duplicates: dict[str, list[tuple[int, ExperimentSpec]]] = {}
        pending_keys: set[str] = set()
        hits = 0

        for index, spec in enumerate(specs):
            key = spec.key()
            record = self.cache.get(key) if self.cache else None
            if record is not None:
                results[index] = self._labelled(
                    SpecResult.from_record(record), spec)
                hits += 1
            elif key in pending_keys:
                duplicates.setdefault(key, []).append((index, spec))
            else:
                pending.append((index, spec))
                pending_keys.add(key)

        # Cache every completed design point as it arrives and persist even
        # when a later spec fails, so an interrupted sweep is incremental.
        try:
            for (index, spec), result in zip(
                    pending, self._execute_iter([s for _, s in pending])):
                results[index] = result
                for dup_index, dup_spec in duplicates.get(result.key, ()):
                    # Shared with a point executed in this very run, so it
                    # is not a cache recall.
                    results[dup_index] = self._labelled(
                        SpecResult.from_record(result.to_record(),
                                               from_cache=False), dup_spec)
                if self.cache is not None:
                    self.cache.put(result.key, result.to_record())
        finally:
            if self.cache is not None:
                self.cache.save()

        return ExplorationResult(
            results=list(results),
            cache_hits=hits,
            cache_misses=len(pending),
            elapsed_s=time.perf_counter() - started,
        )

    @staticmethod
    def _labelled(result: SpecResult, spec: ExperimentSpec) -> SpecResult:
        """Attach the requesting spec's display parameters to a recalled
        result, so a shared cache entry never mislabels a design point."""
        result.parameters = dict(spec.parameters)
        return result

    def _execute_iter(self, specs: list[ExperimentSpec]):
        """Yield results in spec order, parallel when possible.

        Only *pool creation* is guarded: a restricted environment without
        worker processes falls back to the identical serial path, but an
        error raised by a design point itself always propagates.
        """
        pool = None
        if self.jobs > 1 and len(specs) > 1:
            try:
                import multiprocessing
                pool = multiprocessing.Pool(min(self.jobs, len(specs)))
            except (ImportError, OSError):
                pool = None
        if pool is not None:
            with pool:
                yield from pool.imap(execute_spec, specs)
        else:
            for spec in specs:
                yield execute_spec(spec)
