"""Design-space exploration over the Patmos model.

The paper trades average-case performance against WCET and clock frequency
across many architecture parameters; this package sweeps those parameters at
scale instead of one hand-edited configuration at a time:

* :mod:`repro.explore.space` — declarative parameter spaces expanding into
  concrete :class:`ExperimentSpec` design points;
* :mod:`repro.explore.runner` — batch execution across a worker pool with
  deterministic, order-preserving results;
* :mod:`repro.explore.cache` — an on-disk result cache keyed by a content
  hash, making repeated sweeps incremental;
* :mod:`repro.explore.pareto` — Pareto-frontier extraction over
  (WCET bound, observed cycles, estimated fmax);
* ``python -m repro.explore`` — the command-line front end.

>>> from repro.explore import ParameterSpace, ExplorationRunner
>>> space = (ParameterSpace(["vector_sum"])
...          .axis("method_cache_size", [1024, 4096]))
>>> outcome = ExplorationRunner().run(space)
>>> len(outcome)
2
"""

from .cache import CACHE_VERSION, ResultCache
from .cli import main
from .pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    dominates,
    pareto_frontier,
    pareto_table,
)
from .runner import (
    ExplorationResult,
    ExplorationRunner,
    SpecResult,
    execute_spec,
)
from .space import (
    AXIS_ALIASES,
    Axis,
    ExperimentSpec,
    ParameterSpace,
    resolve_axis,
)

__all__ = [
    "AXIS_ALIASES",
    "Axis",
    "CACHE_VERSION",
    "DEFAULT_OBJECTIVES",
    "ExperimentSpec",
    "ExplorationResult",
    "ExplorationRunner",
    "Objective",
    "ParameterSpace",
    "ResultCache",
    "SpecResult",
    "dominates",
    "execute_spec",
    "main",
    "pareto_frontier",
    "pareto_table",
    "resolve_axis",
]
