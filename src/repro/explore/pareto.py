"""Pareto-frontier extraction over exploration results.

The sweep's figures of merit pull in different directions: the WCET bound
and the average-case cycle count want large caches and branching code, the
achievable clock frequency wants single-issue simplicity, and so on.  No
single design point wins everywhere, so the useful output of a sweep is the
set of *non-dominated* points — the Pareto frontier over the selected
objectives — plus a table showing what each frontier point gives up.

Objectives address result attributes (or mapping keys) by name, so the
functions work on :class:`~repro.explore.runner.SpecResult` objects, plain
dicts and test fixtures alike.  An objective whose value is missing (``None``)
on any point is skipped for the whole frontier computation rather than
silently ranking incomparable points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ExplorationError
from .tables import format_table


@dataclass(frozen=True)
class Objective:
    """One figure of merit: an attribute name and an optimization direction."""

    name: str
    maximize: bool = False

    def value(self, point) -> Optional[float]:
        """Read this objective off a result object or mapping."""
        if isinstance(point, dict):
            return point.get(self.name)
        return getattr(point, self.name, None)

    @property
    def direction(self) -> str:
        return "max" if self.maximize else "min"


#: The paper's trade-off triangle: worst case vs. average case vs. clock.
DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective("wcet_cycles"),
    Objective("cycles"),
    Objective("fmax_mhz", maximize=True),
)


def _usable_objectives(points: Sequence,
                       objectives: Sequence[Objective]) -> list[Objective]:
    """Objectives that every point defines; error if none survive."""
    usable = [obj for obj in objectives
              if all(obj.value(point) is not None for point in points)]
    if points and objectives and not usable:
        raise ExplorationError(
            "no objective is defined on every point; objectives: "
            f"{[obj.name for obj in objectives]}")
    return usable


def dominates(a, b, objectives: Sequence[Objective]) -> bool:
    """True iff ``a`` is at least as good as ``b`` everywhere, better once."""
    strictly_better = False
    for objective in objectives:
        va, vb = objective.value(a), objective.value(b)
        if objective.maximize:
            va, vb = -va, -vb
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_frontier(points: Sequence, objectives: Sequence[Objective]
                    = DEFAULT_OBJECTIVES) -> list:
    """The non-dominated subset of ``points``, in input order.

    Duplicated coordinates are all kept (none strictly improves on the
    other), so equivalent design points remain visible in the output.
    """
    points = list(points)
    usable = _usable_objectives(points, objectives)
    if not usable:
        return points
    return [candidate for candidate in points
            if not any(dominates(other, candidate, usable)
                       for other in points if other is not candidate)]


def pareto_table(points: Sequence, objectives: Sequence[Objective]
                 = DEFAULT_OBJECTIVES) -> str:
    """Render the frontier as an aligned text table.

    Works on any points the objectives can read; rows carry the point's
    ``kernel``/``parameters`` when present (SpecResult) and the objective
    values always.
    """
    points = list(points)
    frontier = pareto_frontier(points, objectives)
    usable = _usable_objectives(points, objectives)
    headers = ["design point"] + [f"{obj.name} ({obj.direction})"
                                  for obj in usable]
    rows = [[_label(point)] + [obj.value(point) for obj in usable]
            for point in frontier]
    return (f"Pareto frontier: {len(frontier)} of {len(points)} "
            f"design points\n" + format_table(headers, rows))


def _label(point) -> str:
    kernel = (point.get("kernel") if isinstance(point, dict)
              else getattr(point, "kernel", None))
    parameters = (point.get("parameters") if isinstance(point, dict)
                  else getattr(point, "parameters", None))
    if kernel is None:
        return repr(point)
    if parameters:
        params = ", ".join(f"{k}={v}" for k, v in parameters.items())
        return f"{kernel} [{params}]"
    return str(kernel)
