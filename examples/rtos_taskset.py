"""System-level scenario: a preemptive multi-task workload on a 2-core CMP.

Two Patmos cores share memory through a TDMA arbiter; each core runs three
periodic/sporadic control tasks under a preemptive fixed-priority scheduler
driven by timer and I/O interrupts.  Because the TDMA arbiter makes every
core's memory latency independent of the other core, the classical
response-time analysis on top of per-task WCET bounds is *end-to-end
sound*: the observed worst response time of every task stays below its
statically computed bound.

Run with ``python examples/rtos_taskset.py``.
"""

from repro.rtos import RtosSystem, synthesize_tasksets


def main() -> None:
    # Seeded synthesis: four short control kernels (control_update,
    # sensor_filter, crc_step, actuator_ramp) packed into per-core task
    # sets at 40% utilisation with rate-monotonic priorities.
    tasksets = synthesize_tasksets(num_cores=2, tasks_per_core=3,
                                   utilisation=0.4,
                                   priority_assignment="rate_monotonic",
                                   seed=0)
    for core_id, taskset in enumerate(tasksets):
        for task in taskset.tasks:
            print(f"core {core_id}: {task.name:24s} kind={task.kind:8s} "
                  f"T={task.period:5d} prio={task.priority}")
    print()

    system = RtosSystem(tasksets, arbiter="tdma", policy="fixed_priority",
                        seed=0)
    result = system.run()

    print(result.table())
    print()
    print(result.summary())

    assert result.violations() == [], "a response-time bound was violated"
    print("\nevery observed response time stays below its analytical bound;")
    print("the bound of one task never depends on the other core's tasks.")


if __name__ == "__main__":
    main()
