"""Seeded fault injection: bit flips and bus errors under a WCET bound.

Part one runs a single 2-core TDMA co-simulation under a deterministic
:class:`~repro.faults.FaultPlan` — main-memory bit flips corrected by
SEC-DED ECC (the correction latency is charged to the core's clock) and
bus transfer errors absorbed by bounded retries — and prints the per-fault
log: what was injected, when, and how it was recovered.

Part two runs a full seeded campaign over a kernel × core-count matrix and
checks the two claims the paper's time-predictability argument extends to:
the faulted outputs still match the reference, and every core stays at or
below its *fault-aware* WCET bound (bus retries and ECC latency folded
into the static analysis).  Same seed ⇒ same faults ⇒ same report.

Run with ``python examples/fault_campaign.py``.
"""

from repro import DEFAULT_CONFIG, compile_and_link
from repro.cmp import MulticoreSystem
from repro.faults import FaultPlan, run_fault_campaign
from repro.workloads import build_kernel

SEED = 42


def main() -> None:
    kernel = build_kernel("checksum")
    image, _ = compile_and_link(kernel.program)

    # Size the plan from a fault-free baseline so every fault lands while
    # the program is still running.
    baseline = MulticoreSystem([image] * 2).run(analyse=False)
    horizon = max(baseline.observed_by_core())
    plan = FaultPlan.generate(
        SEED, num_cores=2, horizon=horizon,
        bank_bytes=DEFAULT_CONFIG.memory.size_bytes,
        memory_flips=4, bus_errors=2, ecc=True)
    print(f"fault plan: seed {SEED}, {len(plan)} faults, "
          f"hash {plan.content_hash()}\n")

    result = MulticoreSystem([image] * 2, faults=plan).run(analyse=False)
    print("per-fault log (one 2-core checksum run):")
    print(result.fault_log.table())
    for core in result.cores:
        assert core.sim.output == kernel.expected_output
    print(f"\nfaulted run finished in {max(result.observed_by_core())} "
          f"cycles (fault-free: {horizon}); all outputs still correct.\n")

    report = run_fault_campaign(seed=SEED, cores=(2, 4),
                                memory_flips=3, bus_errors=3)
    print("campaign outcome table (kernel x cores, fault-aware WCET):")
    print(report.table())
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
