"""Chip-multiprocessor scenario: four Patmos cores sharing memory via TDMA.

Each core runs a different kernel; the TDMA arbiter makes the worst-case
memory latency of every core independent of what the other cores do, so each
core keeps an individually computed, sound WCET bound.

Run with ``python examples/cmp_tdma.py``.
"""

from repro import compile_and_link
from repro.cmp import CmpSystem, default_tdma_schedule, single_core_reference
from repro.workloads import build_kernel

CORE_KERNELS = ("vector_sum", "checksum", "fir_filter", "saturate")


def main() -> None:
    kernels = [build_kernel(name) for name in CORE_KERNELS]
    images = [compile_and_link(kernel.program)[0] for kernel in kernels]

    schedule = default_tdma_schedule(len(images))
    print(f"TDMA schedule: {schedule.num_cores} slots of "
          f"{schedule.slot_cycles} cycles (period {schedule.period})\n")

    system = CmpSystem(images, schedule=schedule)
    shared = system.run(analyse=True)

    print(f"{'core':4s} {'kernel':12s} {'alone':>8s} {'shared':>8s} "
          f"{'WCET bound':>11s} {'bound/shared':>13s}")
    for kernel, image, core in zip(kernels, images, shared.cores):
        alone = single_core_reference(image)
        assert core.sim.output == kernel.expected_output
        print(f"{core.core_id:<4d} {kernel.name:12s} "
              f"{alone.observed_cycles:8d} {core.observed_cycles:8d} "
              f"{core.wcet_cycles:11d} "
              f"{core.wcet_cycles / core.observed_cycles:13.2f}")

    print(f"\nmakespan of the 4-core system: {shared.makespan} cycles")
    print("every observed execution stays below its statically computed bound,")
    print("and the bound of one core never depends on the other cores' code.")


if __name__ == "__main__":
    main()
