"""WCET analysis scenario: bound a control kernel and compare cache designs.

This example reproduces, on one kernel, the argument of the paper: the
time-predictable caches (method cache, split data caches, stack cache) keep
the statically computed WCET bound close to the observed execution time,
while the conventional organisations force the analysis to be pessimistic.

Run with ``python examples/wcet_analysis.py``.
"""

from repro import CycleSimulator, compile_and_link
from repro.caches import HierarchyOptions
from repro.wcet import WcetOptions, analyze_wcet
from repro.workloads import build_mixed_access


def evaluate(label, image, hierarchy=None, wcet_options=WcetOptions()):
    simulator = CycleSimulator(image, strict=True, hierarchy_options=hierarchy)
    observed = simulator.run()
    bound = analyze_wcet(image, options=wcet_options)
    print(f"{label:32s} observed {observed.cycles:6d} cycles   "
          f"WCET bound {bound.wcet_cycles:6d} cycles   "
          f"ratio {bound.wcet_cycles / observed.cycles:.2f}")
    return observed, bound


def main() -> None:
    kernel = build_mixed_access(n=32)
    image, _ = compile_and_link(kernel.program)
    print(f"kernel: {kernel.name} — {kernel.description}\n")

    # The Patmos organisation: split, typed caches.
    observed, bound = evaluate("Patmos split caches", image)

    # Baseline 1: one unified data cache for stack/static/heap data.
    evaluate("unified data cache", image,
             hierarchy=HierarchyOptions(unified_data_cache=True),
             wcet_options=WcetOptions(unified_data_cache=True))

    # Baseline 2: no cache analysis at all (every access is a miss).
    evaluate("no cache analysis", image,
             wcet_options=WcetOptions(method_cache="always_miss",
                                      static_cache="always_miss"))

    print("\nper-function breakdown of the Patmos bound:")
    print(bound.summary())
    print("\nblock execution counts on the worst-case path of main:")
    main_wcet = bound.per_function["main"]
    for label, count in sorted(main_wcet.ipet.block_counts.items()):
        print(f"  {label:16s} x{count:4d}  "
              f"(cost {main_wcet.block_costs[label]} cycles)")


if __name__ == "__main__":
    main()
