"""Quickstart: build, compile, simulate and analyse a small Patmos program.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    CycleSimulator,
    FunctionalSimulator,
    ProgramBuilder,
    compile_and_link,
)
from repro.asm import disassemble_image
from repro.wcet import analyze_wcet


def build_program():
    """Sum an array from the static/constant cache and call a helper."""
    b = ProgramBuilder("quickstart")
    b.data("values", [3, 1, 4, 1, 5, 9, 2, 6])

    main = b.function("main")
    main.li("r1", "values")     # address of the data symbol
    main.li("r2", 8)            # element count
    main.li("r3", 0)            # accumulator
    main.label("loop")
    main.emit("lwc", "r4", "r1", 0)          # typed load: static/constant cache
    main.emit("add", "r3", "r3", "r4")
    main.emit("addi", "r1", "r1", 4)
    main.emit("subi", "r2", "r2", 1)
    main.emit("cmpineq", "p1", "r2", 0)
    main.br("loop", pred="p1")
    main.loop_bound("loop", 8)               # WCET annotation
    main.call("scale")
    main.out("r3")                            # debug output channel
    main.halt()

    scale = b.function("scale")
    scale.emit("shli", "r3", "r3", 1)
    scale.ret()
    return b.build()


def main() -> None:
    program = build_program()

    # Compile: stack allocation, VLIW scheduling, delay-slot filling, method
    # cache splitting — then link into an executable image.
    image, compile_result = compile_and_link(program)
    print("=== linked image ===")
    print(disassemble_image(image))
    print(f"second issue slot used in "
          f"{compile_result.schedule.dual_issue_bundles} bundles")

    # Functional simulation checks the architectural behaviour.
    functional = FunctionalSimulator(image, strict=True).run()
    print(f"functional result : {functional.output[0]} "
          f"({functional.bundles} bundles)")

    # Cycle-accurate simulation with the time-predictable caches.
    cycle = CycleSimulator(image, strict=True).run()
    print("=== cycle-accurate simulation ===")
    print(cycle.summary())

    # Static WCET analysis (IPET + method/stack/static cache analyses).
    wcet = analyze_wcet(image)
    print("=== WCET analysis ===")
    print(wcet.summary())
    print(f"observed {cycle.cycles} cycles -> bound/observed = "
          f"{wcet.tightness(cycle.cycles):.2f}")


if __name__ == "__main__":
    main()
