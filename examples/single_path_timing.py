"""Single-path code generation: input-independent execution time.

The linear-search kernel exits its loop as soon as the key is found, so its
execution time leaks the key position.  Compiling the same kernel with the
single-path transformation (if-conversion plus counted-loop conversion,
Section 4.2 of the paper) makes every run take exactly the same number of
cycles — the WCET *is* the execution time.

Run with ``python examples/single_path_timing.py``.
"""

from repro import CompileOptions, CycleSimulator, compile_and_link
from repro.wcet import analyze_wcet
from repro.workloads import build_linear_search

KEY_POSITIONS = (0, 4, 12, 20, 27, 31)


def run_variant(label: str, options: CompileOptions) -> None:
    print(f"--- {label} ---")
    cycles = []
    bound = None
    for key_index in KEY_POSITIONS:
        kernel = build_linear_search(n=32, key_index=key_index)
        image, _ = compile_and_link(kernel.program, options=options)
        result = CycleSimulator(image, strict=True).run()
        assert result.output == kernel.expected_output
        if bound is None:
            bound = analyze_wcet(image).wcet_cycles
        cycles.append(result.cycles)
        print(f"  key at index {key_index:2d}: {result.cycles:4d} cycles")
    spread = max(cycles) - min(cycles)
    print(f"  WCET bound {bound} cycles, observed spread {spread} cycles\n")


def main() -> None:
    run_variant("branchy baseline", CompileOptions())
    run_variant("single-path code", CompileOptions(single_path=True))


if __name__ == "__main__":
    main()
