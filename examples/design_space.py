"""Design-space exploration: method-cache size x TDMA slot length.

The paper's core trade-off is between average-case throughput and the WCET
bound.  This example sweeps two architecture parameters on a 2-core CMP —
the method-cache size and the length of each core's TDMA memory slot — runs
every combination through the cycle-accurate simulator and the static WCET
analysis, and prints the Pareto frontier over (WCET bound, observed cycles,
estimated fmax).

Run with ``python examples/design_space.py``.  A result cache in the working
directory makes re-runs instant; delete ``design-space-cache.json`` to force
a fresh sweep.
"""

from repro.explore import ExplorationRunner, ParameterSpace, ResultCache


def main() -> None:
    # One full burst takes memory.setup_cycles + burst_words * cycles_per_word
    # = 14 cycles with the default configuration, so slots below 14 cannot
    # fit a transfer; wider slots trade each core's worst case for laxer
    # scheduling granularity.
    # call_tree spills out of a small method cache, so the method-cache axis
    # actually moves both objectives; fir_filter fits everywhere and shows
    # the pure TDMA trade-off.
    space = (ParameterSpace(["call_tree", "fir_filter"])
             .axis("method_cache_size", [512, 1024, 4096])
             .axis("cores", [2])
             .axis("slot_cycles", [14, 28, 56]))

    runner = ExplorationRunner(jobs=4,
                               cache=ResultCache("design-space-cache.json"))
    outcome = runner.run(space)

    print(outcome.table())
    print()
    print(outcome.pareto_summary())
    print()
    print(outcome.summary())


if __name__ == "__main__":
    main()
