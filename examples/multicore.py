"""Shared-memory multicore co-simulation: TDMA versus round-robin.

Four Patmos cores run a mixed workload against one shared main memory.  The
same mix is co-simulated twice — once under the paper's static TDMA
arbitration and once under a work-conserving round-robin arbiter — and each
core is also simulated completely alone with the closed-form TDMA arbiter.

The point of the experiment is the paper's CMP claim made visible:

* under TDMA, the interleaved co-simulation reports *exactly* the cycles of
  the independent per-core runs (timing is decoupled from the co-runners,
  so per-core WCET analysis stays valid);
* under round-robin, the cores are usually faster on average but their
  timing now depends on what the other cores do — re-run with a different
  mix and the numbers move.

Run with ``python examples/multicore.py``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import compile_and_link
from repro.cmp import MulticoreSystem
from repro.workloads import build_kernel

CORE_KERNELS = ("vector_sum", "stream_checksum", "fir_filter", "saturate")


def main() -> None:
    kernels = [build_kernel(name) for name in CORE_KERNELS]
    images = [compile_and_link(kernel.program)[0] for kernel in kernels]

    analytic = MulticoreSystem(images, mode="analytic").run(analyse=True)
    tdma = MulticoreSystem(images, mode="cosim", arbiter="tdma").run(
        analyse=True)
    rr = MulticoreSystem(images, mode="cosim", arbiter="round_robin").run(
        analyse=True)

    print("4-core mix on one shared memory "
          f"(TDMA period {tdma.schedule.period} cycles)\n")
    print(f"{'core':4s} {'kernel':16s} {'alone(TDMA)':>11s} "
          f"{'cosim TDMA':>10s} {'cosim RR':>9s} {'WCET(TDMA)':>11s} "
          f"{'WCET(RR)':>9s}")
    for kernel, alone, t_core, r_core in zip(kernels, analytic.cores,
                                             tdma.cores, rr.cores):
        assert t_core.sim.output == kernel.expected_output
        assert r_core.sim.output == kernel.expected_output
        print(f"{t_core.core_id:<4d} {kernel.name:16s} "
              f"{alone.observed_cycles:11d} {t_core.observed_cycles:10d} "
              f"{r_core.observed_cycles:9d} {t_core.wcet_cycles:11d} "
              f"{r_core.wcet_cycles:9d}")

    assert tdma.observed_by_core() == analytic.observed_by_core()
    print("\nTDMA co-simulation == independent simulation on every core:")
    print("  the arbiter decouples the cores, the bounds stay per-core.")
    print(f"round-robin makespan {rr.makespan} vs TDMA {tdma.makespan}: "
          "faster on average,")
    print("  but each core's timing now depends on its co-runners.")

    totals = rr.system_stats()["totals"]
    print(f"\nround-robin interference: "
          f"{totals['arbitration_cycles']} arbitration wait cycles, "
          f"{totals['words_transferred']} words through the controllers.")


if __name__ == "__main__":
    main()
