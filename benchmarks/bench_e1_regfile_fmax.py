"""E1 — Register-file organisation and maximum clock frequency (Section 5).

Paper claims reproduced: the double-clocked (TDM) block-RAM register file
needs only two block RAMs, supports the 4R/2W ports of the dual-issue
pipeline, the resulting system clock exceeds 200 MHz on a Virtex-5 (speed
grade 2), and the ALU — not the register file — is the critical path.
"""

from harness import print_table

from repro.hw import (
    ALL_DEVICES,
    VIRTEX5_SPEED2,
    DoubleClockedBramRegisterFile,
    RegisterFilePorts,
    compare_register_files,
    estimate_pipeline_timing,
    estimate_resources,
)


def test_e1_register_file_comparison(benchmark):
    ports = RegisterFilePorts()  # 4 read / 2 write ports (dual issue)
    reports = benchmark(compare_register_files, VIRTEX5_SPEED2, ports)

    rows = []
    for report in reports:
        rows.append([report.name, report.block_rams, report.lut_estimate,
                     f"{report.max_system_mhz:.0f} MHz"])
    print_table("E1a: register-file variants on Virtex-5 (speed grade -2)",
                ["variant", "BRAMs", "~LUTs", "RF-limited f_max"], rows)

    tdm = next(r for r in reports if r.name == "double-clocked-tdm")
    replicated = next(r for r in reports if r.name == "replicated-bram")
    assert tdm.block_rams == 2
    assert replicated.block_rams > tdm.block_rams
    assert tdm.max_system_mhz > 200.0

    rows = []
    for device in ALL_DEVICES:
        report = estimate_pipeline_timing(device)
        rows.append([device.name, f"{report.max_frequency_mhz:.0f} MHz",
                     report.critical_stage.name, report.limited_by])
    print_table("E1b: pipeline f_max with the TDM register file",
                ["device", "f_max", "critical stage", "limited by"], rows)

    virtex = estimate_pipeline_timing(VIRTEX5_SPEED2)
    assert virtex.max_frequency_mhz > 200.0
    assert virtex.critical_stage.name == "execute"  # the ALU, as in the paper

    resources = estimate_resources(VIRTEX5_SPEED2)
    print_table("E1c: on-chip memory budget of one core",
                ["component", "BRAMs"],
                [["register file", resources.register_file_brams],
                 ["method cache", resources.method_cache_brams],
                 ["stack cache", resources.stack_cache_brams],
                 ["static/constant cache", resources.static_cache_brams],
                 ["object cache", resources.data_cache_brams],
                 ["scratchpad", resources.scratchpad_brams],
                 ["total", resources.total_brams]])
    benchmark.extra_info["fmax_mhz"] = round(virtex.max_frequency_mhz, 1)
    benchmark.extra_info["rf_brams"] = tdm.block_rams
