"""E9 — Chip multiprocessor with TDMA memory arbitration (Sections 1–3).

Claims reproduced: replicating the Patmos pipeline and arbitrating the shared
main memory with a static TDMA schedule keeps every core's WCET bounded and
independent of the other cores' behaviour; the per-core WCET grows
predictably (roughly linearly in the TDMA period) with the core count.
"""

from harness import print_table

from repro import PatmosConfig, compile_and_link
from repro.cmp import CmpSystem, single_core_reference
from repro.workloads import build_kernel


def _measure():
    config = PatmosConfig()
    rows = []
    bounds = []
    kernel = build_kernel("vector_sum", n=24, seed=3)
    image, _ = compile_and_link(kernel.program, config)
    alone = single_core_reference(image, config)
    rows.append([1, alone.observed_cycles, alone.wcet_cycles,
                 f"{alone.wcet_cycles / alone.observed_cycles:.2f}"])
    bounds.append(alone.wcet_cycles)
    for cores in (2, 4, 8):
        images = []
        kernels = []
        for core in range(cores):
            k = build_kernel("vector_sum", n=24, seed=core + 3)
            img, _ = compile_and_link(k.program, config)
            images.append(img)
            kernels.append(k)
        system = CmpSystem(images, config)
        result = system.run(analyse=True)
        core0 = result.cores[0]
        assert core0.sim.output == kernels[0].expected_output
        assert core0.wcet_cycles >= core0.observed_cycles
        rows.append([cores, core0.observed_cycles, core0.wcet_cycles,
                     f"{core0.wcet_cycles / core0.observed_cycles:.2f}"])
        bounds.append(core0.wcet_cycles)
    return rows, bounds


def test_e9_tdma_scaling(benchmark):
    rows, bounds = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table("E9: per-core WCET and observed cycles vs core count (vector_sum)",
                ["cores", "observed (core 0)", "WCET bound", "bound/observed"],
                rows)
    # Bounds grow monotonically with the number of cores but stay finite and
    # sound; the growth comes only from the TDMA period.
    assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))
    benchmark.extra_info["bound_1_core"] = bounds[0]
    benchmark.extra_info["bound_8_cores"] = bounds[-1]
