"""E6 — Split (decoupled) main-memory loads hide latency (Section 3.3).

Claims reproduced: a main-memory access is split into a start instruction and
an explicit wait, so the scheduler can hide the deterministic memory latency
behind independent instructions.  A pointer-chasing loop, whose next address
depends on the loaded value, cannot hide anything and shows the full latency.
"""

from harness import print_table, run_kernel

from repro import CompileOptions
from repro.workloads import build_pointer_chase, build_stream_checksum


def _measure():
    stream = build_stream_checksum(32)
    chase = build_pointer_chase(24)
    results = {}
    for label, kernel in (("stream", stream), ("pointer chase", chase)):
        for hide in (True, False):
            suffix = "scheduled wait" if hide else "wait right after load"
            results[(label, hide)] = run_kernel(
                kernel, options=CompileOptions(hide_split_loads=hide),
                label=f"{label}, {suffix}")
    return results, stream.attrs["n"], chase.attrs["n"]


def test_e6_split_load_latency_hiding(benchmark):
    results, n_stream, n_chase = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    counts = {"stream": n_stream, "pointer chase": n_chase}
    rows = []
    for (label, hide), outcome in results.items():
        rows.append([outcome.name, outcome.cycles,
                     f"{outcome.cycles / counts[label]:.1f}",
                     outcome.extra["stalls"]])
    print_table("E6: split main-memory loads",
                ["configuration", "cycles", "cycles/element", "stall cycles"],
                rows)
    stream_gain = (results[("stream", False)].cycles
                   - results[("stream", True)].cycles)
    chase_gain = (results[("pointer chase", False)].cycles
                  - results[("pointer chase", True)].cycles)
    # Scheduling the wait away from the load removes most of the wait stalls
    # and saves cycles when independent work exists (the streaming kernel) ...
    assert results[("stream", True)].extra["stalls"] < \
        results[("stream", False)].extra["stalls"]
    assert stream_gain > 0
    # ... but cannot help when the next address depends on the loaded value.
    assert stream_gain > chase_gain
    benchmark.extra_info["stream_gain_cycles"] = stream_gain
    benchmark.extra_info["chase_gain_cycles"] = chase_gain
