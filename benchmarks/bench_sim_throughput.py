"""Simulator hot-loop throughput: pre-decoded engine vs reference interpreter.

Runs the workloads of the E2 (dual-issue), E3 (pipeline timing) and E7
(single-path) experiments on both execution engines, measures bundles/sec,
verifies that the engines produce identical results, and emits a
machine-readable ``BENCH_sim.json``::

    python benchmarks/bench_sim_throughput.py [--smoke] [--output PATH]

``--smoke`` runs each workload once per engine (fast enough for CI) and the
process exits non-zero if any workload loses golden equivalence, so a CI step
catches an engine regression even without stable timing.  The full mode times
repeated runs and reports per-workload and aggregate speed-ups.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CompileOptions, CycleSimulator, PatmosConfig, \
    compile_and_link  # noqa: E402
from repro.workloads import PERFORMANCE_SUITE, build_kernel  # noqa: E402
from repro.workloads.kernels import build_linear_search, build_saturate, \
    build_checksum, build_vector_sum  # noqa: E402

#: The experiment workloads the ISSUE's acceptance criterion names.
EXPERIMENTS: dict[str, list[tuple[str, object, CompileOptions]]] = {
    "E2": [(name, None, CompileOptions(dual_issue=True))
           for name in PERFORMANCE_SUITE],
    "E3": [
        ("checksum_24", build_checksum(24), CompileOptions()),
        ("vector_sum_16", build_vector_sum(16), CompileOptions()),
        ("linear_search_sp", build_linear_search(24, key_index=20),
         CompileOptions(single_path=True)),
    ],
    "E7": [
        ("linear_search_sp_32", build_linear_search(32, key_index=17),
         CompileOptions(single_path=True)),
        ("saturate_ifc", build_saturate(24),
         CompileOptions(if_convert=True)),
    ],
}


def _canonical(result) -> dict:
    return {
        "cycles": result.cycles,
        "bundles": result.bundles,
        "instructions": result.instructions,
        "nops": result.nops,
        "output": result.output,
        "stalls": result.stalls.to_dict(),
        "block_counts": sorted(
            (list(k), v) for k, v in result.block_counts.items()),
        "call_counts": result.call_counts,
        "cache_stats": result.cache_stats,
        "halted": result.halted,
    }


def _measure(image, config, engine: str, min_seconds: float
             ) -> tuple[float, int, dict]:
    """Return (bundles/sec, bundles per run, canonical result)."""
    # Warm-up run: triggers the one-time decode pass for the fast engine and
    # gives us the reference result for the equivalence check.
    warm = CycleSimulator(image, config=config, strict=True,
                          engine=engine).run()
    elapsed = 0.0
    bundles = 0
    while elapsed < min_seconds or bundles == 0:
        sim = CycleSimulator(image, config=config, strict=True, engine=engine)
        started = time.perf_counter()
        result = sim.run()
        elapsed += time.perf_counter() - started
        bundles += result.bundles
    return bundles / elapsed, warm.bundles, _canonical(warm)


def run_benchmark(smoke: bool) -> dict:
    config = PatmosConfig()
    min_seconds = 0.0 if smoke else 0.3
    report: dict = {
        "schema": "bench_sim_throughput/v1",
        "mode": "smoke" if smoke else "full",
        "experiments": {},
    }
    speedups = []
    failures = 0
    checked = 0
    for exp_name, cases in EXPERIMENTS.items():
        workloads = {}
        for label, kernel, options in cases:
            if kernel is None:
                kernel = build_kernel(label)
            image, _ = compile_and_link(kernel.program, config, options)
            ref_bps, bundles, ref_result = _measure(
                image, config, "reference", min_seconds)
            fast_bps, _, fast_result = _measure(
                image, config, "fast", min_seconds)
            checked += 1
            equivalent = ref_result == fast_result
            if not equivalent:
                failures += 1
                print(f"EQUIVALENCE FAILURE: {exp_name}/{label}",
                      file=sys.stderr)
            speedup = fast_bps / ref_bps if ref_bps else 0.0
            speedups.append(speedup)
            workloads[label] = {
                "bundles": bundles,
                "reference_bundles_per_sec": round(ref_bps, 1),
                "fast_bundles_per_sec": round(fast_bps, 1),
                "speedup": round(speedup, 3),
                "equivalent": equivalent,
            }
            print(f"{exp_name:3s} {label:22s} ref {ref_bps / 1e3:8.1f}k/s  "
                  f"fast {fast_bps / 1e3:8.1f}k/s  {speedup:5.2f}x  "
                  f"{'ok' if equivalent else 'MISMATCH'}")
        exp_speedups = [w["speedup"] for w in workloads.values()]
        report["experiments"][exp_name] = {
            "workloads": workloads,
            "min_speedup": round(min(exp_speedups), 3),
            "geomean_speedup": round(
                math.exp(sum(math.log(s) for s in exp_speedups)
                         / len(exp_speedups)), 3),
        }
    report["equivalence"] = {"checked": checked, "failures": failures}
    report["summary"] = {
        "min_speedup": round(min(speedups), 3),
        "geomean_speedup": round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 3),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single run per workload; equivalence gate only")
    parser.add_argument("--output", default="BENCH_sim.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}: min speedup "
          f"{report['summary']['min_speedup']}x, geomean "
          f"{report['summary']['geomean_speedup']}x")
    if report["equivalence"]["failures"]:
        print("fast engine lost equivalence — failing", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
