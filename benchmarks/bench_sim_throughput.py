"""Simulator hot-loop throughput: reference vs micro-op vs generated code.

Runs the workloads of the E2 (dual-issue), E3 (pipeline timing) and E7
(single-path) experiments on all three execution engines (``reference``
interpreter, ``fast`` micro-op engine, ``jit`` generated superblocks) and
on both simulator classes (functional = no timing hooks, the pure hot-loop
measure; cycle = the full memory hierarchy), measures bundles/sec, verifies
that the engines produce identical results, and emits a machine-readable
``BENCH_sim.json`` (schema v2)::

    python benchmarks/bench_sim_throughput.py [--smoke] [--output PATH]
    python benchmarks/bench_sim_throughput.py \
        --kernels checksum,fir_filter,matmul,saturate --min-speedup 3.0

``--smoke`` runs each workload once per engine (fast enough for CI) and the
process exits non-zero if any workload loses golden equivalence, so a CI
step catches an engine regression even without stable timing.  The full
mode times repeated runs and reports per-workload and aggregate speed-ups.

``--min-speedup X`` gates the *functional-simulator mean jit-over-fast*
ratio: the run fails if the generated-code engine is less than ``X`` times
the micro-op engine's hot-loop throughput averaged over the selected
workloads.  (The cycle simulator's ratio is reported too, but its runtime
is dominated by the shared timing hooks, which no engine can specialise
away.)  ``--kernels`` restricts the workload set (by label) so CI can gate
a small, timing-stable subset.

If a previously committed report exists (``--baseline``, default the
repository's ``BENCH_sim.json``), its summary is embedded for comparison;
the baseline never gates — absolute machine speed is not reproducible.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CompileOptions, CycleSimulator, FunctionalSimulator, \
    PatmosConfig, compile_and_link  # noqa: E402
from repro.workloads import PERFORMANCE_SUITE, build_kernel  # noqa: E402
from repro.workloads.kernels import build_linear_search, build_saturate, \
    build_checksum, build_vector_sum  # noqa: E402

ENGINES = ("reference", "fast", "jit")
SIMS = (("functional", FunctionalSimulator), ("cycle", CycleSimulator))

#: The experiment workloads the ISSUE's acceptance criterion names.
EXPERIMENTS: dict[str, list[tuple[str, object, CompileOptions]]] = {
    "E2": [(name, None, CompileOptions(dual_issue=True))
           for name in PERFORMANCE_SUITE],
    "E3": [
        ("checksum_24", build_checksum(24), CompileOptions()),
        ("vector_sum_16", build_vector_sum(16), CompileOptions()),
        ("linear_search_sp", build_linear_search(24, key_index=20),
         CompileOptions(single_path=True)),
    ],
    "E7": [
        ("linear_search_sp_32", build_linear_search(32, key_index=17),
         CompileOptions(single_path=True)),
        ("saturate_ifc", build_saturate(24),
         CompileOptions(if_convert=True)),
    ],
}


def _canonical(result) -> dict:
    return {
        "cycles": result.cycles,
        "bundles": result.bundles,
        "instructions": result.instructions,
        "nops": result.nops,
        "output": result.output,
        "stalls": result.stalls.to_dict(),
        "block_counts": sorted(
            (list(k), v) for k, v in result.block_counts.items()),
        "call_counts": result.call_counts,
        "cache_stats": result.cache_stats,
        "halted": result.halted,
    }


def _measure(image, config, sim_cls, engine: str, min_seconds: float
             ) -> tuple[float, int, dict]:
    """Return (best bundles/sec, bundles per run, canonical result)."""
    # Warm-up run: triggers the one-time decode pass (and, for the jit
    # engine, code generation / the disk-cache hit) and gives us the result
    # for the equivalence check.  Only run() is timed — construction cost is
    # engine-independent and compilation is amortised over a sweep.  The
    # non-strict decode variant is measured (the constructor default and
    # the common path, without schedule-checking micro-ops); the strict
    # variant's equivalence is pinned by tests/test_engine_equivalence.py.
    warm = sim_cls(image, config=config, engine=engine).run()
    best = 0.0
    elapsed = 0.0
    while elapsed < min_seconds or best == 0.0:
        sim = sim_cls(image, config=config, engine=engine)
        started = time.perf_counter()
        result = sim.run()
        run_elapsed = time.perf_counter() - started
        elapsed += run_elapsed
        rate = result.bundles / run_elapsed if run_elapsed > 0 else 0.0
        if rate > best:
            best = rate
    return best, warm.bundles, _canonical(warm)


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _geomean(values) -> float:
    values = list(values)
    if not values or any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _ratio(numer: float, denom: float) -> float:
    return numer / denom if denom else 0.0


def _load_baseline(path: Path) -> dict | None:
    """The committed report's summary, normalised across schema versions."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    summary = data.get("summary", {})
    if data.get("schema") == "bench_sim_throughput/v2":
        keep = summary
    else:
        # v1 timed the cycle simulator and reported fast-vs-reference only.
        keep = {"cycle": {
            "mean_fast_over_reference": summary.get("geomean_speedup")}}
    return {"path": str(path), "schema": data.get("schema"),
            "mode": data.get("mode"), "summary": keep}


def run_benchmark(smoke: bool, kernels: list[str] | None) -> dict:
    config = PatmosConfig()
    min_seconds = 0.0 if smoke else 0.3
    report: dict = {
        "schema": "bench_sim_throughput/v2",
        "mode": "smoke" if smoke else "full",
        "engines": list(ENGINES),
        "simulators": [name for name, _ in SIMS],
        "experiments": {},
    }
    ratios = {sim_name: {"fast_over_reference": [], "jit_over_reference": [],
                         "jit_over_fast": []} for sim_name, _ in SIMS}
    failures = 0
    checked = 0
    selected = 0
    for exp_name, cases in EXPERIMENTS.items():
        workloads = {}
        for label, kernel, options in cases:
            if kernels is not None and label not in kernels:
                continue
            selected += 1
            if kernel is None:
                kernel = build_kernel(label)
            image, _ = compile_and_link(kernel.program, config, options)
            record: dict = {}
            equivalent = True
            for sim_name, sim_cls in SIMS:
                throughput = {}
                results = {}
                for engine in ENGINES:
                    bps, bundles, canonical = _measure(
                        image, config, sim_cls, engine, min_seconds)
                    throughput[engine] = round(bps, 1)
                    results[engine] = canonical
                    record["bundles"] = bundles
                checked += 1
                sim_equivalent = all(results[engine] == results["reference"]
                                     for engine in ENGINES)
                if not sim_equivalent:
                    failures += 1
                    equivalent = False
                    print(f"EQUIVALENCE FAILURE: {exp_name}/{label} "
                          f"({sim_name})", file=sys.stderr)
                speedup = {
                    "fast_over_reference": round(_ratio(
                        throughput["fast"], throughput["reference"]), 3),
                    "jit_over_reference": round(_ratio(
                        throughput["jit"], throughput["reference"]), 3),
                    "jit_over_fast": round(_ratio(
                        throughput["jit"], throughput["fast"]), 3),
                }
                for key, value in speedup.items():
                    ratios[sim_name][key].append(value)
                record[sim_name] = {
                    "throughput_bundles_per_sec": throughput,
                    "speedup": speedup,
                }
                print(f"{exp_name:3s} {label:22s} {sim_name:10s} "
                      f"ref {throughput['reference'] / 1e3:8.1f}k/s  "
                      f"fast {throughput['fast'] / 1e3:8.1f}k/s  "
                      f"jit {throughput['jit'] / 1e3:8.1f}k/s  "
                      f"j/f {speedup['jit_over_fast']:5.2f}x  "
                      f"j/r {speedup['jit_over_reference']:6.2f}x  "
                      f"{'ok' if sim_equivalent else 'MISMATCH'}")
            record["equivalent"] = equivalent
            workloads[label] = record
        if not workloads:
            continue
        jf = [w["functional"]["speedup"]["jit_over_fast"]
              for w in workloads.values()]
        report["experiments"][exp_name] = {
            "workloads": workloads,
            "functional_mean_jit_over_fast": round(_mean(jf), 3),
            "functional_min_jit_over_fast": round(min(jf), 3),
        }
    if kernels is not None and selected < len(kernels):
        known = {label for cases in EXPERIMENTS.values()
                 for label, _, _ in cases}
        missing = sorted(set(kernels) - known)
        raise SystemExit(f"error: unknown workload labels {missing}; "
                         f"available: {sorted(known)}")
    report["equivalence"] = {"checked": checked, "failures": failures}
    report["summary"] = {
        sim_name: {
            "mean_fast_over_reference": round(
                _mean(values["fast_over_reference"]), 3),
            "mean_jit_over_reference": round(
                _mean(values["jit_over_reference"]), 3),
            "mean_jit_over_fast": round(
                _mean(values["jit_over_fast"]), 3),
            "geomean_jit_over_fast": round(
                _geomean(values["jit_over_fast"]), 3),
            "min_jit_over_fast": round(
                min(values["jit_over_fast"]), 3),
        }
        for sim_name, values in ratios.items()
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single run per workload; equivalence gate only")
    parser.add_argument("--output", default="BENCH_sim.json",
                        help="where to write the JSON report")
    parser.add_argument("--kernels", default=None,
                        help="comma-separated workload labels to run "
                             "(default: all)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the functional simulator's mean "
                             "jit/fast speedup is >= X")
    parser.add_argument("--baseline", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_sim.json"),
        help="committed report to embed for comparison (informational)")
    args = parser.parse_args(argv)

    kernels = ([name.strip() for name in args.kernels.split(",")
                if name.strip()] if args.kernels else None)
    report = run_benchmark(smoke=args.smoke, kernels=kernels)
    baseline = _load_baseline(Path(args.baseline))
    report["baseline"] = baseline
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    functional = report["summary"]["functional"]
    cycle = report["summary"]["cycle"]
    print(f"\nwrote {args.output}:")
    print(f"  functional: mean jit/fast "
          f"{functional['mean_jit_over_fast']}x, mean jit/ref "
          f"{functional['mean_jit_over_reference']}x, mean fast/ref "
          f"{functional['mean_fast_over_reference']}x")
    print(f"  cycle:      mean jit/fast "
          f"{cycle['mean_jit_over_fast']}x, mean jit/ref "
          f"{cycle['mean_jit_over_reference']}x, mean fast/ref "
          f"{cycle['mean_fast_over_reference']}x")
    if baseline and isinstance(baseline["summary"].get("functional"), dict):
        print(f"  baseline functional mean jit/fast: "
              f"{baseline['summary']['functional']['mean_jit_over_fast']}x")
    if report["equivalence"]["failures"]:
        print("an engine lost golden equivalence — failing", file=sys.stderr)
        return 1
    if (args.min_speedup is not None
            and functional["mean_jit_over_fast"] < args.min_speedup):
        print(f"jit perf gate FAILED: functional mean jit/fast "
              f"{functional['mean_jit_over_fast']}x < {args.min_speedup}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
