"""E5 — Split data cache vs unified data cache (Sections 1, 3.3).

Claims reproduced: routing stack, static/constant and heap data into separate
caches selected by typed loads/stores keeps stack and static accesses
analysable (guaranteed or persistent hits), while a unified cache forces the
analysis to treat every data access — including stack data — as a potential
miss, inflating the WCET bound.
"""

from harness import print_table, run_kernel

from repro.caches import HierarchyOptions
from repro.wcet import WcetOptions
from repro.workloads import build_mixed_access


def _measure():
    kernel = build_mixed_access(24)
    split = run_kernel(kernel, wcet=WcetOptions(), label="split caches")
    unified = run_kernel(
        kernel,
        hierarchy=HierarchyOptions(unified_data_cache=True),
        wcet=WcetOptions(unified_data_cache=True),
        label="unified cache")
    return split, unified


def test_e5_split_vs_unified_data_cache(benchmark):
    split, unified = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [[o.name, o.cycles, o.wcet_cycles, f"{o.tightness:.2f}"]
            for o in (split, unified)]
    print_table("E5: split vs unified data caching (mixed_access kernel)",
                ["configuration", "simulated", "WCET bound", "bound/observed"],
                rows)
    assert split.wcet_cycles >= split.cycles
    assert unified.wcet_cycles >= unified.cycles
    # The split organisation yields the tighter (smaller) WCET bound.
    assert split.wcet_cycles < unified.wcet_cycles
    benchmark.extra_info["bound_reduction"] = round(
        unified.wcet_cycles / split.wcet_cycles, 3)
