"""E3 — Exposed pipeline timing (Section 3.2, Figure 1).

The pipeline of Figure 1 never stalls for hazards: branches expose two delay
slots, calls/returns three, loads one, and the local execution time of a
basic block is exactly its bundle count.  This experiment validates the
timing model against cycle-accurate simulation: for straight-line and
single-path code the analytical bound matches the simulation cycle for cycle.
"""

from harness import print_table, run_kernel

from repro import CompileOptions
from repro.wcet import WcetOptions
from repro.workloads import build_checksum, build_linear_search, build_vector_sum


def _measure():
    rows = []
    exact = []
    cases = [
        ("checksum", build_checksum(24), CompileOptions()),
        ("vector_sum", build_vector_sum(16), CompileOptions()),
        ("linear_search/single-path", build_linear_search(24, key_index=20),
         CompileOptions(single_path=True)),
    ]
    for label, kernel, options in cases:
        outcome = run_kernel(kernel, options=options, wcet=WcetOptions(),
                             label=label)
        gap = outcome.wcet_cycles - outcome.cycles
        rows.append([label, outcome.cycles, outcome.wcet_cycles, gap,
                     f"{outcome.tightness:.3f}"])
        exact.append(gap)
    return rows, exact


def test_e3_block_timing_matches_simulation(benchmark):
    rows, gaps = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_table("E3: analytical WCET vs cycle-accurate simulation",
                ["kernel", "simulated", "WCET bound", "gap", "bound/observed"],
                rows)
    # The exposed-delay pipeline makes the model exact for these kernels.
    assert all(gap >= 0 for gap in gaps)
    assert min(gaps) <= 2, "at least one kernel should match (almost) exactly"
    benchmark.extra_info["max_gap_cycles"] = max(gaps)
