"""Shared helpers for the experiment benchmarks (E1–E11).

Each ``bench_e*.py`` module regenerates one experiment from DESIGN.md: it
builds the workloads, runs the cycle-accurate simulator and/or the WCET
analysis for every configuration of the experiment, prints the table the
experiment is about (who wins, by what factor) and lets ``pytest-benchmark``
time a representative run so the harness integrates with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CompileOptions, CycleSimulator, PatmosConfig, compile_and_link
from repro.caches import HierarchyOptions
from repro.wcet import WcetOptions, analyze_wcet
from repro.workloads import Kernel


@dataclass
class RunOutcome:
    """Observed execution and WCET bound of one kernel/configuration."""

    name: str
    cycles: int
    bundles: int
    wcet_cycles: int | None = None
    extra: dict | None = None

    @property
    def tightness(self) -> float | None:
        if self.wcet_cycles is None:
            return None
        return self.wcet_cycles / self.cycles


def run_kernel(kernel: Kernel, config: PatmosConfig | None = None,
               options: CompileOptions = CompileOptions(),
               hierarchy: HierarchyOptions | None = None,
               wcet: WcetOptions | None = None,
               label: str | None = None) -> RunOutcome:
    """Compile, simulate (strict) and optionally analyse one kernel."""
    config = config or PatmosConfig()
    image, _ = compile_and_link(kernel.program, config, options)
    simulator = CycleSimulator(image, config=config, strict=True,
                               hierarchy_options=hierarchy)
    result = simulator.run()
    if result.output != kernel.expected_output:
        raise AssertionError(
            f"{kernel.name}: wrong output {result.output[:4]}... "
            f"(expected {kernel.expected_output[:4]}...)")
    bound = None
    if wcet is not None:
        bound = analyze_wcet(image, config, options=wcet).wcet_cycles
    return RunOutcome(name=label or kernel.name, cycles=result.cycles,
                      bundles=result.bundles, wcet_cycles=bound,
                      extra={"stalls": result.stalls.total()})


def profiled(fn, enabled: bool):
    """Run ``fn()``, optionally under cProfile, and return its result.

    With ``enabled`` the top 20 functions by cumulative time are printed
    (also when ``fn`` raises), so the perf benchmarks' ``--profile`` flags
    share one definition of "the profile dump".
    """
    if not enabled:
        return fn()
    import cProfile
    import pstats
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a simple aligned table (the per-experiment result)."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(headers[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(headers))]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def ratio(a: float, b: float) -> str:
    """Format a speed-up / overhead ratio."""
    if b == 0:
        return "n/a"
    return f"{a / b:.2f}x"
