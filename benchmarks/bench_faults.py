"""Fault-injection campaign benchmark and zero-overhead gate.

Two measurements, one machine-readable ``BENCH_faults.json``:

* **campaign** — a seeded fault campaign (:func:`repro.faults.
  run_fault_campaign`): memory bit flips corrected by SEC-DED ECC and bus
  transfer errors absorbed by bounded retries, every cell checked against
  its fault-aware WCET bound and its reference output.  The campaign runs
  twice and must produce the same determinism hash (same seed ⇒ same
  faults ⇒ same outcomes).
* **overhead** — the cost of *carrying* the fault machinery when nothing
  is injected: the same co-simulation with no plan vs an empty
  :class:`~repro.faults.FaultPlan`, best-of-N wall time.  The empty plan
  must stay bit-identical and (with ``--max-overhead``) within a few
  percent of the baseline — resilience hooks must not tax the fault-free
  fast path.

::

    python benchmarks/bench_faults.py [--smoke] [--seed N]
                                      [--max-overhead PCT] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PatmosConfig, compile_and_link  # noqa: E402
from repro.cmp import MulticoreSystem  # noqa: E402
from repro.faults import FaultPlan, run_fault_campaign  # noqa: E402
from repro.workloads import build_kernel  # noqa: E402


def _best_of(images, config, faults, repeats: int) -> tuple[float, list]:
    """Minimum wall time (and the last per-core cycles) over ``repeats``."""
    best = float("inf")
    cycles = None
    for _ in range(repeats):
        system = MulticoreSystem(images, config, arbiter="tdma",
                                 mode="cosim", faults=faults)
        started = time.perf_counter()
        result = system.run(analyse=False)
        best = min(best, time.perf_counter() - started)
        cycles = result.observed_by_core()
    return best, cycles


def measure_overhead(config, smoke: bool) -> dict:
    image, _ = compile_and_link(build_kernel("vector_sum").program, config)
    images = [image] * 4
    repeats = 3 if smoke else 7
    baseline_s, baseline_cycles = _best_of(images, config, None, repeats)
    empty_s, empty_cycles = _best_of(images, config, FaultPlan(), repeats)
    overhead_pct = ((empty_s - baseline_s) / baseline_s) * 100.0
    return {
        "kernel": "vector_sum",
        "cores": len(images),
        "repeats": repeats,
        "baseline_wall_s": round(baseline_s, 6),
        "empty_plan_wall_s": round(empty_s, 6),
        "overhead_pct": round(overhead_pct, 2),
        "bit_identical": empty_cycles == baseline_cycles,
    }


def run_benchmark(seed: int, smoke: bool) -> dict:
    config = PatmosConfig()
    kernels = ("vector_sum",) if smoke else ("vector_sum", "checksum",
                                             "saturate")
    cores = (2,) if smoke else (2, 4)
    campaign_kwargs = dict(seed=seed, kernels=kernels, cores=cores,
                           memory_flips=3, bus_errors=3, config=config)
    first = run_fault_campaign(**campaign_kwargs)
    second = run_fault_campaign(**campaign_kwargs)
    counts = first.counts()
    overhead = measure_overhead(config, smoke)
    report = {
        "schema": "bench_faults/v1",
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "campaign": first.to_dict(),
        "faults": {
            "planned": sum(cell.faults_planned for cell in first.cells),
            "corrected": counts.get("corrected", 0),
            "retried": counts.get("retried", 0),
            "flipped": counts.get("flipped", 0),
            "unrecovered": counts.get("unrecovered", 0),
        },
        "wcet_violations": sum(cell.violations for cell in first.cells),
        "determinism_hash": first.determinism_hash(),
        "determinism_ok": (first.determinism_hash()
                           == second.determinism_hash()),
        "overhead": overhead,
    }
    print(first.table())
    print()
    print(first.summary())
    print(f"  empty-plan overhead: {overhead['overhead_pct']:+.2f}% "
          f"(bit-identical: {overhead['bit_identical']})")
    print(f"  determinism        : "
          f"{'stable' if report['determinism_ok'] else 'UNSTABLE'}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small matrix, fewer timing repeats (CI-sized); "
                             "all correctness gates still apply")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--max-overhead", type=float, default=None,
                        metavar="PCT",
                        help="fail when the empty-plan run is more than PCT "
                             "percent slower than the fault-free baseline")
    parser.add_argument("--output", default="BENCH_faults.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run_benchmark(seed=args.seed, smoke=args.smoke)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    failed = False
    if not report["campaign"]["ok"]:
        print("fault campaign FAILED (violations, unrecovered faults or "
              "broken outputs)", file=sys.stderr)
        failed = True
    if not report["determinism_ok"]:
        print("campaign is not reproducible: two runs with the same seed "
              "produced different fault logs", file=sys.stderr)
        failed = True
    if not report["overhead"]["bit_identical"]:
        print("empty fault plan changed the simulated timing — the "
              "zero-overhead gate requires bit-identity", file=sys.stderr)
        failed = True
    if (args.max_overhead is not None
            and report["overhead"]["overhead_pct"] > args.max_overhead):
        print(f"PERF REGRESSION: empty-plan overhead "
              f"{report['overhead']['overhead_pct']:.2f}% exceeds the "
              f"allowed {args.max_overhead:.2f}%", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
