"""E2 — Dual-issue pipeline vs single-issue baseline (Sections 1, 3, 5).

The paper motivates the dual-issue VLIW pipeline with single-thread
performance.  This experiment compiles the performance suite for both issue
widths and reports cycles, speed-up and second-slot utilisation.
"""

import pytest
from harness import print_table, ratio, run_kernel

from repro import CompileOptions
from repro.workloads import PERFORMANCE_SUITE, build_kernel


def _run_suite():
    rows = []
    speedups = []
    for name in PERFORMANCE_SUITE:
        kernel = build_kernel(name)
        dual = run_kernel(kernel, options=CompileOptions(dual_issue=True))
        single = run_kernel(kernel, options=CompileOptions(dual_issue=False))
        speedup = single.cycles / dual.cycles
        speedups.append(speedup)
        rows.append([name, single.cycles, dual.cycles, f"{speedup:.2f}x"])
    return rows, speedups


def test_e2_dual_issue_speedup(benchmark):
    rows, speedups = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    print_table("E2: dual-issue vs single-issue (cycles)",
                ["kernel", "single-issue", "dual-issue", "speed-up"], rows)
    mean_speedup = sum(speedups) / len(speedups)
    print(f"geometric-ish mean speed-up: {mean_speedup:.2f}x")
    # Dual issue never loses and helps on ILP-rich kernels.
    assert all(s >= 0.99 for s in speedups)
    assert max(speedups) > 1.1
    benchmark.extra_info["mean_speedup"] = round(mean_speedup, 3)


@pytest.mark.parametrize("name", ("checksum", "matmul"))
def test_e2_slot_utilisation(benchmark, name):
    kernel = build_kernel(name)
    outcome = benchmark.pedantic(
        run_kernel, args=(kernel,), kwargs={"options": CompileOptions()},
        rounds=1, iterations=1)
    print(f"\nE2: {name}: {outcome.cycles} cycles, {outcome.bundles} bundles")
    assert outcome.cycles > 0
