"""E10 — WCET-aware compilation (Section 4.1).

Claims reproduced: the compiler should evaluate optimisations against the
WCET bound and keep a transformation only when it improves that bound (the
WCC-style approach the paper cites), instead of optimising the average case.
Here the candidate transformations are if-conversion / single-path
conversion; the WCET-aware driver picks the variant with the smallest bound
per kernel and never loses against always-on or always-off policies.
"""

from harness import print_table, run_kernel

from repro import CompileOptions
from repro.wcet import WcetOptions
from repro.workloads import build_kernel

CANDIDATES = {
    "baseline": CompileOptions(),
    "if-convert": CompileOptions(if_convert=True),
    "single-path": CompileOptions(single_path=True),
}


def _measure():
    table = []
    chosen = {}
    for name in ("saturate", "linear_search", "bubble_sort"):
        kernel = build_kernel(name)
        bounds = {}
        observed = {}
        for label, options in CANDIDATES.items():
            outcome = run_kernel(kernel, options=options, wcet=WcetOptions(),
                                 label=label)
            bounds[label] = outcome.wcet_cycles
            observed[label] = outcome.cycles
        best = min(bounds, key=bounds.get)
        chosen[name] = best
        table.append([name] + [bounds[label] for label in CANDIDATES] + [best])
    return table, chosen


def test_e10_wcet_aware_optimisation_choice(benchmark):
    table, chosen = benchmark.pedantic(_measure, rounds=1, iterations=1)
    headers = ["kernel"] + [f"bound: {label}" for label in CANDIDATES] + ["chosen"]
    print_table("E10: WCET-aware selection of code transformations", headers,
                table)
    # The WCET-aware choice is at least as good as any fixed policy.
    for row in table:
        bounds = row[1:-1]
        assert min(bounds) == bounds[list(CANDIDATES).index(row[-1])]
    benchmark.extra_info["choices"] = chosen
