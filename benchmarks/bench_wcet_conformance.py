"""WCET soundness conformance gate and tightness trajectory.

Runs the differential WCET-vs-simulation matrix of :mod:`repro.verify`
(kernels × cache models × arbiters, co-simulated for multicore points) and
quantifies the tightening win of the refined per-core, per-transfer TDMA
interference bound over the blanket ``period - 1`` charge, emitting a
machine-readable ``BENCH_wcet.json``::

    python benchmarks/bench_wcet_conformance.py [--smoke] [--output PATH]
                                                [--jobs N] [--profile]

The process exits non-zero if

* any scenario observes more cycles than its static bound (a soundness
  violation), or
* the refined TDMA bound does not yield a strictly lower mean tightness
  ratio than the blanket bound on the weighted TDMA configuration.

``--smoke`` restricts the matrix to the performance suite (fast enough for
CI); the JSON schema is identical, so the recorded per-scenario tightness
ratios form a comparable trajectory across commits either way.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import profiled  # noqa: E402
from repro import PatmosConfig, compile_and_link  # noqa: E402
from repro.cmp import MulticoreSystem  # noqa: E402
from repro.memory import TdmaSchedule  # noqa: E402
from repro.verify import run_conformance  # noqa: E402
from repro.wcet import analyze_wcet  # noqa: E402
from repro.workloads import build_kernel, resolve_kernels  # noqa: E402

#: Weighted TDMA geometry on which the refinement win is demonstrated.
#: Asymmetric slots make the blanket period - 1 charge visibly loose, and
#: the 2x-burst base slot gives every core in-slot head-room (with exactly
#: one burst per slot a weight-1 core's refined bound degenerates to the
#: blanket one: the whole-burst MemoryConfig cost model makes every
#: arbitrated transfer one burst, so the refinement is driven by the
#: per-core slot length).
REFINEMENT_CORES = 4
REFINEMENT_WEIGHTS = (1, 2, 1, 1)
REFINEMENT_SLOT_BURSTS = 2


def tdma_refinement(kernels, config: PatmosConfig) -> dict:
    """Refined vs blanket TDMA tightness on the weighted schedule.

    For every kernel the weighted-TDMA system is co-simulated once; each
    core's observed cycles are then compared against two bounds sharing all
    cache models: the refined per-core, per-transfer interference bound
    (``tdma_core_id`` set) and the blanket schedule-wide bound
    (``tdma_core_id=None``, i.e. ``period - 1`` per transfer).
    """
    schedule = TdmaSchedule(
        num_cores=REFINEMENT_CORES,
        slot_cycles=REFINEMENT_SLOT_BURSTS * config.memory.burst_cycles(),
        slot_weights=REFINEMENT_WEIGHTS)
    rows = []
    for name in kernels:
        kernel = build_kernel(name)
        image, _ = compile_and_link(kernel.program, config)
        system = MulticoreSystem([image] * REFINEMENT_CORES, config,
                                 schedule=schedule, mode="cosim")
        result = system.run(analyse=False, strict=True)
        for core in result.cores:
            refined_options = system.wcet_options_for_core(core.core_id)
            blanket_options = dataclasses.replace(refined_options,
                                                  tdma_core_id=None)
            refined = analyze_wcet(image, config,
                                   options=refined_options).wcet_cycles
            blanket = analyze_wcet(image, config,
                                   options=blanket_options).wcet_cycles
            rows.append({
                "kernel": name,
                "core": core.core_id,
                "cycles": core.observed_cycles,
                "refined_wcet": refined,
                "blanket_wcet": blanket,
                "refined_tightness": round(refined / core.observed_cycles, 4),
                "blanket_tightness": round(blanket / core.observed_cycles, 4),
                "refined_sound": refined >= core.observed_cycles,
            })
    mean_refined = sum(r["refined_tightness"] for r in rows) / len(rows)
    mean_blanket = sum(r["blanket_tightness"] for r in rows) / len(rows)
    return {
        "cores": REFINEMENT_CORES,
        "slot_weights": list(REFINEMENT_WEIGHTS),
        "per_core": rows,
        "mean_refined_tightness": round(mean_refined, 4),
        "mean_blanket_tightness": round(mean_blanket, 4),
        "bound_reduction_pct": round(
            100.0 * (1 - mean_refined / mean_blanket), 2),
        "refined_strictly_tighter": mean_refined < mean_blanket,
        "refined_all_sound": all(r["refined_sound"] for r in rows),
    }


def run_benchmark(smoke: bool, jobs: int = 1) -> dict:
    config = PatmosConfig()
    kernel_set = ("performance",) if smoke else ("all",)
    kernels = resolve_kernels(kernel_set)

    report = run_conformance(kernels=kernel_set, config=config, jobs=jobs,
                             progress=None)
    refinement = tdma_refinement(kernels, config)

    payload = report.to_dict()
    return {
        "schema": "bench_wcet_conformance/v1",
        "mode": "smoke" if smoke else "full",
        "kernels": list(kernels),
        "conformance": payload["summary"],
        "scenarios": payload["scenarios"],
        "tdma_refinement": refinement,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="performance-suite subset (CI-sized)")
    parser.add_argument("--output", default="BENCH_wcet.json",
                        help="where to write the JSON report")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the conformance matrix")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 20 "
                             "functions by cumulative time")
    args = parser.parse_args(argv)

    jobs = args.jobs
    if args.profile and jobs > 1:
        # Worker processes are invisible to the parent's profiler; a
        # parallel profile would show nothing but pool waits.
        print("--profile runs single-process (ignoring --jobs) so the "
              "dump shows conformance work, not IPC waits", file=sys.stderr)
        jobs = 1
    report = profiled(lambda: run_benchmark(smoke=args.smoke, jobs=jobs),
                      args.profile)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    summary = report["conformance"]
    refinement = report["tdma_refinement"]
    print(f"{summary['checked']} core-scenarios: "
          f"{summary['violations']} violations, mean tightness "
          f"{summary['mean_tightness']}, worst {summary['max_tightness']} "
          f"({summary['max_tightness_scenario']})")
    print(f"weighted TDMA ({REFINEMENT_CORES} cores, weights "
          f"{':'.join(map(str, REFINEMENT_WEIGHTS))}): refined mean "
          f"tightness {refinement['mean_refined_tightness']} vs blanket "
          f"{refinement['mean_blanket_tightness']} "
          f"(-{refinement['bound_reduction_pct']}%)")
    print(f"wrote {args.output}")

    failed = False
    if summary["violations"]:
        print("SOUNDNESS VIOLATION: a simulated execution exceeded its "
              "static WCET bound — failing", file=sys.stderr)
        failed = True
    if not refinement["refined_strictly_tighter"]:
        print("TIGHTNESS REGRESSION: the refined per-core TDMA bound is not "
              "strictly tighter than the blanket period-1 bound — failing",
              file=sys.stderr)
        failed = True
    if not refinement["refined_all_sound"]:
        print("SOUNDNESS VIOLATION: a refined TDMA bound fell below its "
              "co-simulated execution — failing", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
