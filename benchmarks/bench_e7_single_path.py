"""E7 — Predication, if-conversion and single-path code (Sections 3.1, 4.2).

Claims reproduced: full predication lets the compiler remove branches
(if-conversion) and generate single-path code whose execution time does not
depend on input data, which closes the gap between the WCET bound and any
observed execution.
"""

from harness import print_table, run_kernel

from repro import CompileOptions
from repro.wcet import WcetOptions
from repro.workloads import build_linear_search, build_saturate


def _search_variability(options: CompileOptions) -> tuple[int, int]:
    cycles = []
    for key_index in (1, 8, 16, 23, 31):
        kernel = build_linear_search(32, key_index=key_index)
        cycles.append(run_kernel(kernel, options=options).cycles)
    return min(cycles), max(cycles)


def _measure():
    baseline = _search_variability(CompileOptions())
    single_path = _search_variability(CompileOptions(single_path=True))
    saturate = build_saturate(24)
    sat_base = run_kernel(saturate, wcet=WcetOptions(), label="branchy")
    sat_ifc = run_kernel(saturate, options=CompileOptions(if_convert=True),
                         wcet=WcetOptions(), label="if-converted")
    return baseline, single_path, sat_base, sat_ifc


def test_e7_single_path_and_if_conversion(benchmark):
    baseline, single_path, sat_base, sat_ifc = benchmark.pedantic(
        _measure, rounds=1, iterations=1)

    print_table("E7a: linear_search execution-time variation over key position",
                ["variant", "min cycles", "max cycles", "variation"],
                [["branchy baseline", baseline[0], baseline[1],
                  baseline[1] - baseline[0]],
                 ["single-path", single_path[0], single_path[1],
                  single_path[1] - single_path[0]]])
    print_table("E7b: saturate — if-conversion and the WCET bound",
                ["variant", "simulated", "WCET bound", "bound/observed"],
                [[sat_base.name, sat_base.cycles, sat_base.wcet_cycles,
                  f"{sat_base.tightness:.2f}"],
                 [sat_ifc.name, sat_ifc.cycles, sat_ifc.wcet_cycles,
                  f"{sat_ifc.tightness:.2f}"]])

    # Single-path code is input-independent; the branchy baseline is not.
    assert baseline[1] > baseline[0]
    assert single_path[0] == single_path[1]
    # If-conversion tightens the WCET bound of the branchy kernel.
    assert sat_ifc.wcet_cycles <= sat_base.wcet_cycles
    assert sat_ifc.tightness <= sat_base.tightness
    benchmark.extra_info["baseline_variation"] = baseline[1] - baseline[0]
    benchmark.extra_info["single_path_variation"] = single_path[1] - single_path[0]
