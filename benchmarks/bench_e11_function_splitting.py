"""E11 — Function splitting / placement for the method cache (Section 4.2).

Claims reproduced: a function larger than the method cache cannot be cached
as a whole (it streams through the cache on every call); splitting it into
sub-functions connected by ``brcf`` restores method-cache residency, so
repeated calls stop paying the full reload and the WCET analysis can classify
the sub-functions as persistent.
"""

from harness import print_table, run_kernel

from repro import CompileOptions, PatmosConfig
from repro.wcet import WcetOptions
from repro.workloads import build_large_function


def _measure():
    # The function is 1.1x the method cache; at run time only its entry
    # region executes (early exit), the common case splitting is meant for.
    kernel = build_large_function(blocks=48, instructions_per_block=24,
                                  iterations=4, early_exit=True)
    config = PatmosConfig()
    split = run_kernel(kernel, config,
                       options=CompileOptions(split_functions=True),
                       wcet=WcetOptions(method_cache="always_miss"),
                       label="split for method cache")
    unsplit = run_kernel(kernel, config,
                         options=CompileOptions(split_functions=False),
                         wcet=WcetOptions(method_cache="always_miss"),
                         label="oversized, unsplit")
    return split, unsplit


def test_e11_function_splitting(benchmark):
    split, unsplit = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [[o.name, o.cycles, o.extra["stalls"], o.wcet_cycles,
             f"{o.tightness:.2f}"] for o in (split, unsplit)]
    print_table("E11: oversized function vs method-cache-aware splitting",
                ["configuration", "simulated", "stall cycles", "WCET bound",
                 "bound/observed"], rows)
    # Splitting removes the repeated whole-function reloads: only the entered
    # region is ever loaded, and it stays resident across calls.
    assert split.cycles < unsplit.cycles
    assert split.extra["stalls"] < unsplit.extra["stalls"]
    benchmark.extra_info["cycle_reduction"] = round(
        unsplit.cycles / split.cycles, 3)
