"""E4 — Method cache vs conventional instruction cache (Sections 1, 3.3).

Claims reproduced: instruction-cache misses happen only at call/return/brcf,
the miss count is small and analysable (the WCET bound stays close to the
observation), while the conventional I-cache baseline either needs the whole
program to fit or forces the analysis to assume a miss at every fetch.
"""

from harness import print_table, run_kernel

from repro import PatmosConfig
from repro.caches import HierarchyOptions
from repro.config import MethodCacheConfig
from repro.wcet import WcetOptions
from repro.workloads import build_call_tree


def _measure():
    kernel = build_call_tree(num_functions=6, iterations=8, pad_instructions=40)
    # A method cache / I-cache smaller than the total code size.
    config = PatmosConfig(method_cache=MethodCacheConfig(size_bytes=512,
                                                         num_blocks=4))
    method = run_kernel(kernel, config,
                        wcet=WcetOptions(method_cache="persistence"),
                        label="method cache")
    always_miss = run_kernel(kernel, config,
                             wcet=WcetOptions(method_cache="always_miss"),
                             label="method cache (no analysis)")
    conventional = run_kernel(
        kernel, config,
        hierarchy=HierarchyOptions(conventional_icache=True),
        wcet=WcetOptions(conventional_icache=True),
        label="conventional I$")
    return method, always_miss, conventional


def test_e4_method_cache_vs_conventional_icache(benchmark):
    method, always_miss, conventional = benchmark.pedantic(
        _measure, rounds=1, iterations=1)
    rows = [
        [o.name, o.cycles, o.wcet_cycles, f"{o.tightness:.2f}"]
        for o in (method, always_miss, conventional)
    ]
    print_table("E4: instruction caching (cycles, 512-byte caches)",
                ["configuration", "simulated", "WCET bound", "bound/observed"],
                rows)
    # The method-cache bound must be sound and tighter than the conventional
    # instruction-cache analysis.
    assert method.wcet_cycles >= method.cycles
    assert conventional.wcet_cycles > method.wcet_cycles
    assert always_miss.wcet_cycles >= method.wcet_cycles
    benchmark.extra_info["method_tightness"] = round(method.tightness, 3)
    benchmark.extra_info["conventional_tightness"] = round(
        conventional.wcet_cycles / conventional.cycles, 3)
