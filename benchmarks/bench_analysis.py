"""Static-analysis benchmark: loop-bound inference coverage and tightness.

Measures, over the full workload suite, what the abstract-interpretation
value analysis buys the WCET story:

* **inference coverage** — per kernel, how many loops infer a bound and
  how each audits against the manual annotation (match / adopted /
  flagged / unbounded);
* **annotation-free verification** — every manual ``loop_bound``
  annotation is deleted and the kernel re-analysed; the gate requires the
  inferred-only WCET to be a sound bound on the simulated execution and
  records its delta against the annotated bound;
* **tightness** — WCET with the analysis enabled vs disabled, against
  simulated cycles, so a regression that loosens bounds is visible;
* **infeasible-path and lint statistics** — dead edges, exclusive pairs
  and findings per kernel.

Emits machine-readable ``BENCH_analysis.json``::

    python benchmarks/bench_analysis.py [--output PATH] [--kernels all]

The run fails (exit 1) when any kernel's inferred-only WCET drops below
its simulated cycles (an unsound bound), when inference coverage falls
below the committed floor, or when enabling the analysis loosens any
bound.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import analyse_program, lint_program  # noqa: E402
from repro.analysis.loopbounds import STATUS_MATCH  # noqa: E402
from repro.compiler.passes import compile_and_link  # noqa: E402
from repro.sim.cycle import CycleSimulator  # noqa: E402
from repro.wcet.analyzer import WcetOptions, analyze_wcet  # noqa: E402
from repro.workloads.suite import build_kernel, resolve_kernels  # noqa: E402

#: Committed floor: fraction of suite loops whose inferred bound equals
#: the manual annotation.  The suite currently sits at 1.0.
MIN_MATCH_FRACTION = 0.5


def _strip_annotations(program):
    for function in program.functions.values():
        for block in function.blocks:
            block.loop_bound = None


def bench_kernel(name: str) -> dict:
    kernel = build_kernel(name)
    facts = analyse_program(kernel.program)
    audits = facts.loop_audits()
    findings = lint_program(kernel.program, facts=facts)

    image, _ = compile_and_link(kernel.program)
    sim = CycleSimulator(image).run()

    t0 = time.perf_counter()
    with_analysis = analyze_wcet(image, options=WcetOptions(analysis=True))
    analysis_seconds = time.perf_counter() - t0
    without = analyze_wcet(image, options=WcetOptions(analysis=False))

    stripped_kernel = build_kernel(name)
    _strip_annotations(stripped_kernel.program)
    stripped_image, _ = compile_and_link(stripped_kernel.program)
    try:
        inferred_only = analyze_wcet(stripped_image).wcet_cycles
    except Exception:  # noqa: BLE001 - recorded, and gated below
        inferred_only = None

    status_counts: dict[str, int] = {}
    for audit in audits:
        status_counts[audit.status] = status_counts.get(audit.status, 0) + 1

    return {
        "loops": len(audits),
        "audit_statuses": status_counts,
        "infeasible_facts": len(facts.infeasible_facts()),
        "lint_findings": len(findings),
        "simulated_cycles": sim.cycles,
        "wcet_with_analysis": with_analysis.wcet_cycles,
        "wcet_without_analysis": without.wcet_cycles,
        "wcet_inferred_only": inferred_only,
        "tightness_with_analysis": round(
            with_analysis.wcet_cycles / sim.cycles, 4) if sim.cycles else None,
        "analysis_seconds": round(analysis_seconds, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels", nargs="+", default=["all"])
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_analysis.json")
    args = parser.parse_args(argv)

    names = resolve_kernels(args.kernels)
    kernels = {}
    failures = []
    for name in names:
        result = bench_kernel(name)
        kernels[name] = result
        sim_cycles = result["simulated_cycles"]
        for label, key in (("analysis-on", "wcet_with_analysis"),
                           ("inferred-only", "wcet_inferred_only")):
            bound = result[key]
            if bound is not None and bound < sim_cycles:
                failures.append(
                    f"{name}: {label} WCET {bound} < simulated {sim_cycles}")
        if result["wcet_with_analysis"] > result["wcet_without_analysis"]:
            failures.append(f"{name}: analysis loosened the bound")
        print(f"  {name:<22} loops={result['loops']} "
              f"wcet={result['wcet_with_analysis']} "
              f"sim={sim_cycles} "
              f"inferred_only={result['wcet_inferred_only']}")

    total_loops = sum(k["loops"] for k in kernels.values())
    matched = sum(k["audit_statuses"].get(STATUS_MATCH, 0)
                  for k in kernels.values())
    verified_without_annotations = sum(
        1 for k in kernels.values()
        if k["wcet_inferred_only"] is not None
        and k["wcet_inferred_only"] >= k["simulated_cycles"])
    match_fraction = matched / total_loops if total_loops else 1.0
    if match_fraction < MIN_MATCH_FRACTION:
        failures.append(
            f"inference coverage {match_fraction:.2f} below floor "
            f"{MIN_MATCH_FRACTION}")

    report = {
        "schema": "bench_analysis/v1",
        "kernels": kernels,
        "summary": {
            "kernel_count": len(kernels),
            "loops": total_loops,
            "loops_matching_annotation": matched,
            "match_fraction": round(match_fraction, 4),
            "kernels_verified_without_annotations":
                verified_without_annotations,
            "infeasible_facts": sum(
                k["infeasible_facts"] for k in kernels.values()),
            "lint_findings": sum(
                k["lint_findings"] for k in kernels.values()),
        },
        "gates": {
            "min_match_fraction": MIN_MATCH_FRACTION,
            "failures": failures,
        },
    }
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\nwrote {args.output}")
    print(f"loops: {matched}/{total_loops} infer exactly; "
          f"{verified_without_annotations}/{len(kernels)} kernels verify "
          "with annotations deleted")
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
