"""E8 — Stack cache: predictable spill/fill costs (Sections 3.3, 4.2).

Claims reproduced: stack data is served from the stack cache (accesses are
guaranteed hits); spill and fill traffic only happens at sres/sens and is
bounded by a simple occupancy analysis over the call graph, which beats the
naive per-frame bound.
"""

from harness import print_table, run_kernel

from repro import PatmosConfig, compile_and_link
from repro.wcet import WcetOptions, analyse_stack_cache, analyze_wcet
from repro.workloads import build_stack_chain


def _measure():
    kernel = build_stack_chain(depth=8, frame_words=40)
    config = PatmosConfig()
    outcome = run_kernel(kernel, config, wcet=WcetOptions(stack_cache="refined"),
                         label="refined analysis")
    image, _ = compile_and_link(kernel.program, config)
    naive_bound = analyze_wcet(image, config,
                               options=WcetOptions(stack_cache="naive"))
    frames = {name: 42 for name in image.program.functions}
    frames["main"] = 2
    refined = analyse_stack_cache(image.program, config, frames, mode="refined")
    naive = analyse_stack_cache(image.program, config, frames, mode="naive")
    return outcome, naive_bound.wcet_cycles, refined, naive


def test_e8_stack_cache_analysis(benchmark):
    outcome, naive_bound, refined, naive = benchmark.pedantic(
        _measure, rounds=1, iterations=1)

    rows = []
    for name in sorted(refined.spill_words):
        rows.append([name, refined.occupancy_in.get(name, 0),
                     refined.spill_words[name], naive.spill_words[name]])
    print_table("E8a: worst-case spill words per function (refined vs naive)",
                ["function", "occupancy in", "refined spill", "naive spill"],
                rows)
    print_table("E8b: whole-program WCET bound",
                ["analysis", "bound (cycles)", "observed", "bound/observed"],
                [["refined", outcome.wcet_cycles, outcome.cycles,
                  f"{outcome.tightness:.2f}"],
                 ["naive", naive_bound, outcome.cycles,
                  f"{naive_bound / outcome.cycles:.2f}"]])

    assert outcome.wcet_cycles >= outcome.cycles
    assert naive_bound >= outcome.wcet_cycles
    assert sum(refined.spill_words.values()) <= sum(naive.spill_words.values())
    benchmark.extra_info["refined_tightness"] = round(outcome.tightness, 3)
    benchmark.extra_info["naive_tightness"] = round(
        naive_bound / outcome.cycles, 3)
