"""E12 — Design-space exploration throughput with and without result cache.

The exploration engine (``repro.explore``) turns the simulator and the WCET
analyzer into a batch system.  This experiment measures sweep throughput in
design points per second: a cold sweep simulates every point, a warm sweep
answers the identical question purely from the on-disk result cache.  The
cached sweep must return byte-identical records, orders of magnitude faster.
"""

import json
import tempfile
from pathlib import Path

from harness import print_table, ratio

from repro.explore import ExplorationRunner, ParameterSpace, ResultCache


def _space() -> ParameterSpace:
    return (ParameterSpace(["vector_sum", "fir_filter", "saturate"])
            .axis("method_cache_size", [1024, 2048, 4096])
            .axis("single_path", [False, True]))


def _measure():
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "explore-cache.json"
        cold = ExplorationRunner(cache=ResultCache(cache_path)).run(_space())
        warm = ExplorationRunner(cache=ResultCache(cache_path)).run(_space())
    return cold, warm


def test_e12_exploration_cache_throughput(benchmark):
    cold, warm = benchmark.pedantic(_measure, rounds=1, iterations=1)
    points = len(cold)
    cold_rate = points / cold.elapsed_s
    warm_rate = points / warm.elapsed_s
    print_table(
        "E12: sweep throughput (18 design points, WCET analysis included)",
        ["sweep", "points", "hits", "elapsed s", "points/s"],
        [["cold (simulate all)", points, cold.cache_hits,
          f"{cold.elapsed_s:.3f}", f"{cold_rate:.1f}"],
         ["warm (cache only)", points, warm.cache_hits,
          f"{warm.elapsed_s:.3f}", f"{warm_rate:.1f}"]])
    print(f"cache speed-up: {ratio(warm_rate, cold_rate)}")

    assert cold.cache_misses == points and cold.cache_hits == 0
    assert warm.cache_hits == points and warm.cache_misses == 0
    assert (json.dumps(cold.to_records(), sort_keys=True)
            == json.dumps(warm.to_records(), sort_keys=True))
    assert warm.elapsed_s < cold.elapsed_s
    benchmark.extra_info["cold_points_per_second"] = round(cold_rate, 1)
    benchmark.extra_info["warm_points_per_second"] = round(warm_rate, 1)
