"""RTOS response-time soundness gate and determinism/tightness trajectory.

Runs seeded preemptive task-set co-simulations of :mod:`repro.rtos` across
arbiters and scheduling policies, checks the end-to-end response-time claim
(``observed worst response <= analytical bound`` for every bounded task)
and the scheduler-determinism claim (the event-driven and quantum-polling
reference schedulers produce bit-identical task timings under interrupts),
emitting a machine-readable ``BENCH_rtos.json``::

    python benchmarks/bench_rtos.py [--smoke] [--output PATH]

The process exits non-zero if

* any task's observed worst response time exceeds its response-time bound
  (an end-to-end soundness violation),
* any released job misses its deadline, or
* the event and reference schedulers disagree on any task timing or on the
  final shared-memory image.

``--smoke`` restricts the sweep to the CI-sized seed subset; the JSON
schema is identical either way, so the recorded per-task tightness ratios
form a comparable trajectory across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import profiled  # noqa: E402
from repro import PatmosConfig  # noqa: E402
from repro.rtos import RtosSystem, synthesize_tasksets  # noqa: E402

#: (name, arbiter, policy, tasks_per_core, utilisation, seed) sweep cells.
SWEEP = (
    ("fp_tdma", "tdma", "fixed_priority", 3, 0.4, 0),
    ("fp_tdma_hi", "tdma", "fixed_priority", 3, 0.5, 1),
    ("fp_rr", "round_robin", "fixed_priority", 2, 0.4, 2),
    ("fp_priority", "priority", "fixed_priority", 2, 0.4, 3),
    ("slot_tdma", "tdma", "tdma_slot", 2, 0.25, 1),
)
SMOKE_CELLS = ("fp_tdma", "fp_rr", "slot_tdma")
DETERMINISM_SEEDS = (0, 1)


def _build(cell, config, scheduler):
    name, arbiter, policy, tasks_per_core, utilisation, seed = cell
    import dataclasses

    from repro.rtos import RtosOptions
    tasksets = synthesize_tasksets(2, tasks_per_core,
                                   utilisation=utilisation, seed=seed,
                                   config=config)
    options = RtosOptions.for_config(config)
    if policy == "tdma_slot":
        # Wide slots so a whole job plus the blocking charge fits one slot
        # and the cyclic bound stays within a period (see the verify
        # matrix's slot_tdma2 cell).
        options = dataclasses.replace(options, task_slot_cycles=600)
    return RtosSystem(tasksets, config=config, arbiter=arbiter,
                      policy=policy, options=options, seed=seed,
                      scheduler=scheduler)


def run_cell(cell, config) -> dict:
    name = cell[0]
    system = _build(cell, config, "event")
    result = system.run(strict=True)
    tasks = [task for task in result.tasks]
    bounded = [t for t in tasks if t.rta_bound is not None
               and t.max_response is not None]
    tightness = [t.rta_bound / t.max_response for t in bounded
                 if t.max_response > 0]
    return {
        "cell": name,
        "arbiter": cell[1],
        "policy": cell[2],
        "seed": cell[5],
        "tasks": len(tasks),
        "jobs_completed": sum(t.completed for t in tasks),
        "deadline_misses": sum(t.deadline_misses for t in tasks),
        "bounded": len(bounded),
        "unbounded": len(tasks) - len(bounded),
        "violations": len(result.violations()),
        "mean_tightness": (round(sum(tightness) / len(tightness), 4)
                           if tightness else None),
        "max_tightness": (round(max(tightness), 4) if tightness else None),
        "makespan": result.makespan,
    }


def run_determinism(config) -> dict:
    """Event vs reference scheduler bit-identity under interrupts."""
    checked = 0
    mismatches = []
    for seed in DETERMINISM_SEEDS:
        for arbiter in ("tdma", "round_robin"):
            cell = ("det", arbiter, "fixed_priority", 2, 0.4, seed)
            runs = {}
            for scheduler in ("event", "reference"):
                system = _build(cell, config, scheduler)
                result = system.run(strict=True)
                runs[scheduler] = (result.timing_dict(),
                                   bytes(system.shared_memory._data))
            checked += 1
            if runs["event"] != runs["reference"]:
                mismatches.append(f"{arbiter}/seed{seed}")
    return {"combinations": checked, "mismatches": mismatches,
            "identical": not mismatches}


def run_benchmark(smoke: bool) -> dict:
    config = PatmosConfig()
    cells = [cell for cell in SWEEP
             if not smoke or cell[0] in SMOKE_CELLS]
    rows = [run_cell(cell, config) for cell in cells]
    determinism = run_determinism(config)
    return {
        "schema": "bench_rtos/v1",
        "mode": "smoke" if smoke else "full",
        "cells": rows,
        "determinism": determinism,
        "summary": {
            "tasks": sum(r["tasks"] for r in rows),
            "bounded": sum(r["bounded"] for r in rows),
            "violations": sum(r["violations"] for r in rows),
            "deadline_misses": sum(r["deadline_misses"] for r in rows),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized cell subset")
    parser.add_argument("--output", default="BENCH_rtos.json",
                        help="where to write the JSON report")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 20 "
                             "functions by cumulative time")
    args = parser.parse_args(argv)

    report = profiled(lambda: run_benchmark(smoke=args.smoke), args.profile)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    summary = report["summary"]
    determinism = report["determinism"]
    print(f"{len(report['cells'])} task-set cells, {summary['tasks']} tasks: "
          f"{summary['bounded']} bounded, {summary['violations']} "
          f"response-time violations, {summary['deadline_misses']} "
          f"deadline misses")
    print(f"scheduler determinism: {determinism['combinations']} "
          f"event-vs-reference combinations, "
          f"{len(determinism['mismatches'])} mismatches")
    print(f"wrote {args.output}")

    failed = False
    if summary["violations"]:
        print("SOUNDNESS VIOLATION: an observed response time exceeded its "
              "analytical bound — failing", file=sys.stderr)
        failed = True
    if summary["deadline_misses"]:
        print("DEADLINE MISS: a released job completed after its deadline — "
              "failing", file=sys.stderr)
        failed = True
    if not determinism["identical"]:
        print("DETERMINISM VIOLATION: event and reference schedulers "
              f"diverged on {determinism['mismatches']} — failing",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
