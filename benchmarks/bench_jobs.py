"""Durable job engine benchmark: journal overhead and crash recovery.

Two measurements, one machine-readable ``BENCH_jobs.json``:

* **overhead** — the cost of journaling a sweep: the same synthetic cell
  load run through :func:`repro.jobs.run_jobs` with and without an
  append-only journal, best-of-N wall time.  The write-ahead log buys
  resumability with flush-per-record durability; with ``--max-overhead``
  it must stay within a few percent of the bare run (default gate: 5%).
* **recovery** — the point of the journal: a sweep "crashes" after a
  prefix of its cells committed, and the resumed run must re-execute
  *only* the unfinished cells while replaying the committed ones from
  the journal, ending with every cell done exactly once.

::

    python benchmarks/bench_jobs.py [--smoke] [--max-overhead PCT]
                                    [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.jobs import (  # noqa: E402
    JobCell,
    Journal,
    RetryPolicy,
    replay_journal,
    run_jobs,
)

#: Iterations of the synthetic cell body — sized so one cell costs on the
#: order of a short simulation step, not so little that timing noise
#: dominates the journal's per-record cost.
CELL_WORK = 40_000


def synthetic_cell(payload: int) -> int:
    """A deterministic compute-bound stand-in for one sweep cell."""
    acc = 0
    for i in range(CELL_WORK):
        acc = (acc + i * i) & 0xFFFFFFFF
    return acc ^ payload


def _cells(count: int) -> list[JobCell]:
    return [JobCell(key=f"cell/{i}", label=f"cell {i}", payload=i)
            for i in range(count)]


def _run_once(cells, journal_path) -> float:
    journal = Journal(journal_path) if journal_path is not None else None
    started = time.perf_counter()
    outcome = run_jobs(cells, synthetic_cell, journal=journal)
    elapsed = time.perf_counter() - started
    if journal is not None:
        journal.close()
    assert len(outcome.results) == len(cells)
    return elapsed


def measure_overhead(work_dir: Path, cells: int, repeats: int) -> dict:
    """Best-of-N wall time of the same sweep, bare vs journaled."""
    load = _cells(cells)
    bare_s = float("inf")
    journaled_s = float("inf")
    for index in range(repeats):
        bare_s = min(bare_s, _run_once(load, None))
        path = work_dir / f"overhead-{index}.jsonl"
        journaled_s = min(journaled_s, _run_once(load, path))
    overhead_pct = ((journaled_s - bare_s) / bare_s) * 100.0
    return {
        "cells": cells,
        "repeats": repeats,
        "bare_wall_s": round(bare_s, 6),
        "journaled_wall_s": round(journaled_s, 6),
        "overhead_pct": round(overhead_pct, 2),
    }


def measure_recovery(work_dir: Path, cells: int, crash_after: int) -> dict:
    """Crash a sweep after ``crash_after`` committed cells; resume it."""
    load = _cells(cells)
    journal_path = work_dir / "recovery.jsonl"

    # First epoch: the journal records a prefix of done cells, then the
    # "crash" (journal simply stops, exactly like a SIGKILL).
    journal = Journal(journal_path)
    run_jobs(load[:crash_after], synthetic_cell, journal=journal)
    journal.close()

    # Resume: replay decides what is pending; only that re-executes.
    replay = replay_journal(journal_path)
    pending = replay.pending([cell.key for cell in load])
    resumed = [cell for cell in load if cell.key in set(pending)]
    journal = Journal(journal_path)
    outcome = run_jobs(resumed, synthetic_cell, journal=journal,
                       policy=RetryPolicy())
    journal.close()

    final = replay_journal(journal_path)
    return {
        "cells": cells,
        "done_before_crash": len(replay.done),
        "re_executed": len(resumed),
        "replayed": cells - len(resumed),
        "all_done_after_resume": len(final.done) == cells,
        "only_pending_re_executed": len(resumed) == cells - crash_after
        and outcome.executed == len(resumed),
    }


def run_benchmark(smoke: bool, work_dir: Path) -> dict:
    cells = 60 if smoke else 240
    repeats = 3 if smoke else 5
    overhead = measure_overhead(work_dir, cells, repeats)
    recovery = measure_recovery(work_dir, cells // 2, cells // 6)
    report = {
        "schema": "bench_jobs/v1",
        "mode": "smoke" if smoke else "full",
        "overhead": overhead,
        "recovery": recovery,
    }
    print(f"journal overhead   : {overhead['overhead_pct']:+.2f}% "
          f"({overhead['cells']} cells, "
          f"{overhead['bare_wall_s']:.3f}s bare vs "
          f"{overhead['journaled_wall_s']:.3f}s journaled)")
    print(f"crash recovery     : {recovery['replayed']} cells replayed, "
          f"{recovery['re_executed']} re-executed, "
          f"complete: {recovery['all_done_after_resume']}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fewer cells and timing repeats (CI-sized); "
                             "all correctness gates still apply")
    parser.add_argument("--max-overhead", type=float, default=None,
                        metavar="PCT",
                        help="fail when the journaled sweep is more than "
                             "PCT percent slower than the bare sweep")
    parser.add_argument("--output", default="BENCH_jobs.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    import tempfile
    with tempfile.TemporaryDirectory(prefix="bench-jobs-") as work_dir:
        report = run_benchmark(smoke=args.smoke, work_dir=Path(work_dir))
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    failed = False
    if not report["recovery"]["all_done_after_resume"]:
        print("recovery FAILED: resumed sweep did not complete every cell",
              file=sys.stderr)
        failed = True
    if not report["recovery"]["only_pending_re_executed"]:
        print("recovery FAILED: resume re-executed cells the journal had "
              "already committed", file=sys.stderr)
        failed = True
    if args.max_overhead is not None and \
            report["overhead"]["overhead_pct"] > args.max_overhead:
        print(f"journal overhead {report['overhead']['overhead_pct']:.2f}% "
              f"exceeds the {args.max_overhead:g}% gate", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
