"""Multicore co-simulation throughput: event-driven vs quantum scheduling.

Co-simulates a mixed workload on 1/2/4/8 cores under TDMA and round-robin
arbitration with *both* interleaving schedulers — the event-driven default
(``scheduler="event"``) and the quantum-polling reference
(``scheduler="reference"``) — measures aggregate simulated bundles per
second of wall time, records the scheduler activity (slices / releases per
run), verifies the TDMA decoupling property (co-simulated per-core cycles
identical to independent per-core simulation) *and* the scheduler
equivalence (event and reference timing bit-identical), and emits a
machine-readable ``BENCH_cmp.json`` (schema v2)::

    python benchmarks/bench_cmp_throughput.py [--smoke] [--output PATH]
                                              [--min-speedup X] [--profile]

``--smoke`` runs every configuration once (fast enough for CI); the
decoupling and scheduler-equivalence gates still apply, so a CI step
catches an interference leak or a scheduler divergence even without stable
timing.  ``--min-speedup X`` additionally fails the run when the measured
``event_vs_quantum_speedup`` on the 4-core TDMA mix falls below ``X`` (the
CI perf gate).  ``--profile`` dumps the top 20 functions by cumulative time
so future performance work starts from data.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import profiled  # noqa: E402
from repro import PatmosConfig, compile_and_link  # noqa: E402
from repro.cmp import MulticoreSystem  # noqa: E402
from repro.workloads import build_kernel  # noqa: E402

CORE_COUNTS = (1, 2, 4, 8)
ARBITERS = ("tdma", "round_robin")
SCHEDULERS = ("event", "reference")
#: Mixed per-core programs (repeated to the core count) so the cores'
#: clocks diverge the way a real workload mix does.
MIX = ("vector_sum", "stream_checksum", "fir_filter", "saturate")


def _images(config):
    images = []
    for name in MIX:
        image, _ = compile_and_link(build_kernel(name).program, config)
        images.append(image)
    return images


def _measure(images, config, arbiter: str, scheduler: str,
             min_seconds: float):
    """Run one co-simulation repeatedly; returns (report_row, result)."""
    elapsed = 0.0
    bundles = 0
    runs = 0
    result = None
    while elapsed < min_seconds or result is None:
        system = MulticoreSystem(images, config, arbiter=arbiter,
                                 mode="cosim", scheduler=scheduler)
        started = time.perf_counter()
        result = system.run(analyse=False, strict=True)
        elapsed += time.perf_counter() - started
        bundles += sum(core.sim.bundles for core in result.cores)
        runs += 1
    stats = result.scheduler_stats or {}
    row = {
        "bundles_per_run": sum(core.sim.bundles for core in result.cores),
        "bundles_per_sec": round(bundles / elapsed, 1),
        "wall_s_per_run": round(elapsed / runs, 6),
        "makespan": result.makespan,
        "arbitration_wait_cycles":
            result.system_stats()["totals"]["arbitration_cycles"],
        "slices": stats.get("slices"),
        "releases": stats.get("releases"),
    }
    return row, result


def run_benchmark(smoke: bool) -> dict:
    config = PatmosConfig()
    base_images = _images(config)
    min_seconds = 0.0 if smoke else 0.3
    report: dict = {
        "schema": "bench_cmp_throughput/v2",
        "mode": "smoke" if smoke else "full",
        "mix": list(MIX),
        "cores": {},
    }
    divergences = 0
    for cores in CORE_COUNTS:
        images = [base_images[i % len(MIX)] for i in range(cores)]
        per_arbiter = {}
        for arbiter in ARBITERS:
            cell: dict = {}
            results = {}
            for scheduler in SCHEDULERS:
                row, result = _measure(images, config, arbiter, scheduler,
                                       min_seconds)
                cell[scheduler] = row
                results[scheduler] = result
            cell["event_vs_quantum_speedup"] = round(
                cell["event"]["bundles_per_sec"]
                / cell["reference"]["bundles_per_sec"], 2)
            # Scheduler-equivalence gate: the event-driven and quantum
            # schedulers must report bit-identical per-core timing.
            event, reference = results["event"], results["reference"]
            cell["schedulers_match"] = (
                event.observed_by_core() == reference.observed_by_core()
                and event.arbiter_stats == reference.arbiter_stats)
            if not cell["schedulers_match"]:
                divergences += 1
                print(f"SCHEDULER DIVERGENCE at {cores} cores/{arbiter}: "
                      f"event {event.observed_by_core()} != reference "
                      f"{reference.observed_by_core()}", file=sys.stderr)
            if arbiter == "tdma":
                # The decoupling gate: every TDMA-co-simulated core must
                # match its fully independent simulation, cycle for cycle.
                analytic = MulticoreSystem(
                    images, config, arbiter="tdma", mode="analytic").run(
                        analyse=False, strict=True)
                expected = analytic.observed_by_core()
                cell["decoupling_ok"] = (
                    event.observed_by_core() == expected
                    and reference.observed_by_core() == expected)
                if not cell["decoupling_ok"]:
                    divergences += 1
                    print(f"DECOUPLING FAILURE at {cores} cores: cosim "
                          f"{event.observed_by_core()} != independent "
                          f"{expected}", file=sys.stderr)
            per_arbiter[arbiter] = cell
            print(f"{cores} cores  {arbiter:12s} "
                  f"event {cell['event']['bundles_per_sec'] / 1e3:8.1f}k  "
                  f"quantum {cell['reference']['bundles_per_sec'] / 1e3:8.1f}k"
                  f"  speedup {cell['event_vs_quantum_speedup']:5.2f}x  "
                  f"{'ok' if cell['schedulers_match'] and cell.get('decoupling_ok', True) else 'DIVERGED'}")
        report["cores"][str(cores)] = per_arbiter
    report["decoupling"] = {
        "checked": len(CORE_COUNTS) + len(CORE_COUNTS) * len(ARBITERS),
        "divergences": divergences,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single run per configuration; decoupling and "
                             "equivalence gates only")
    parser.add_argument("--output", default="BENCH_cmp.json",
                        help="where to write the JSON report")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the event scheduler is at least X "
                             "times faster than the quantum scheduler on "
                             "the 4-core TDMA mix")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 20 "
                             "functions by cumulative time")
    args = parser.parse_args(argv)

    report = profiled(lambda: run_benchmark(smoke=args.smoke), args.profile)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if report["decoupling"]["divergences"]:
        print("co-simulation diverged (decoupling or scheduler "
              "equivalence) — failing", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        speedup = report["cores"]["4"]["tdma"]["event_vs_quantum_speedup"]
        if speedup < args.min_speedup:
            print(f"PERF REGRESSION: event scheduler only {speedup:.2f}x "
                  f"the quantum scheduler on the 4-core TDMA mix "
                  f"(required {args.min_speedup:.2f}x) — failing",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
