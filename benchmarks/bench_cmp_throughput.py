"""Multicore co-simulation throughput and the TDMA decoupling gate.

Co-simulates a mixed workload on 1/2/4/8 cores under TDMA and round-robin
arbitration, measures aggregate simulated bundles per second of wall time,
verifies the decoupling property (TDMA co-simulation must report per-core
cycles identical to independent per-core simulation) and emits a
machine-readable ``BENCH_cmp.json``::

    python benchmarks/bench_cmp_throughput.py [--smoke] [--output PATH]

``--smoke`` runs every configuration once (fast enough for CI) and the
process exits non-zero if any core of any TDMA configuration diverges from
its independent simulation, so a CI step catches an interference leak in
the shared-memory co-simulation even without stable timing.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PatmosConfig, compile_and_link  # noqa: E402
from repro.cmp import MulticoreSystem  # noqa: E402
from repro.workloads import build_kernel  # noqa: E402

CORE_COUNTS = (1, 2, 4, 8)
ARBITERS = ("tdma", "round_robin")
#: Mixed per-core programs (repeated to the core count) so the cores'
#: clocks diverge the way a real workload mix does.
MIX = ("vector_sum", "stream_checksum", "fir_filter", "saturate")


def _images(config):
    images = []
    for name in MIX:
        image, _ = compile_and_link(build_kernel(name).program, config)
        images.append(image)
    return images


def _measure(images, config, arbiter: str, min_seconds: float):
    """Run one co-simulation repeatedly; returns (report_row, result)."""
    elapsed = 0.0
    bundles = 0
    result = None
    while elapsed < min_seconds or result is None:
        system = MulticoreSystem(images, config, arbiter=arbiter,
                                 mode="cosim")
        started = time.perf_counter()
        result = system.run(analyse=False, strict=True)
        elapsed += time.perf_counter() - started
        bundles += sum(core.sim.bundles for core in result.cores)
    row = {
        "bundles_per_run": sum(core.sim.bundles for core in result.cores),
        "bundles_per_sec": round(bundles / elapsed, 1),
        "makespan": result.makespan,
        "arbitration_wait_cycles":
            result.system_stats()["totals"]["arbitration_cycles"],
    }
    return row, result


def run_benchmark(smoke: bool) -> dict:
    config = PatmosConfig()
    base_images = _images(config)
    min_seconds = 0.0 if smoke else 0.3
    report: dict = {
        "schema": "bench_cmp_throughput/v1",
        "mode": "smoke" if smoke else "full",
        "mix": list(MIX),
        "cores": {},
    }
    divergences = 0
    for cores in CORE_COUNTS:
        images = [base_images[i % len(MIX)] for i in range(cores)]
        per_core = {}
        for arbiter in ARBITERS:
            row, result = _measure(images, config, arbiter, min_seconds)
            if arbiter == "tdma":
                # The decoupling gate: every TDMA-co-simulated core must
                # match its fully independent simulation, cycle for cycle.
                analytic = MulticoreSystem(
                    images, config, arbiter="tdma", mode="analytic").run(
                        analyse=False, strict=True)
                expected = analytic.observed_by_core()
                observed = result.observed_by_core()
                row["decoupling_ok"] = observed == expected
                if not row["decoupling_ok"]:
                    divergences += 1
                    print(f"DECOUPLING FAILURE at {cores} cores: cosim "
                          f"{observed} != independent {expected}",
                          file=sys.stderr)
            per_core[arbiter] = row
            print(f"{cores} cores  {arbiter:12s} "
                  f"{row['bundles_per_sec'] / 1e3:8.1f}k bundles/s  "
                  f"makespan {row['makespan']:7d}  "
                  f"{'ok' if row.get('decoupling_ok', True) else 'DIVERGED'}")
        report["cores"][str(cores)] = per_core
    report["decoupling"] = {
        "checked": len(CORE_COUNTS),
        "divergences": divergences,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single run per configuration; decoupling gate "
                             "only")
    parser.add_argument("--output", default="BENCH_cmp.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if report["decoupling"]["divergences"]:
        print("TDMA co-simulation diverged from independent simulation — "
              "failing", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
