"""Setuptools shim.

The environment has no ``wheel`` package (and no network access to fetch it),
so PEP 660 editable installs fail with "invalid command 'bdist_wheel'".  This
shim lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
editable install.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
