"""Tests for registers, opcodes, instructions and bundles."""

import pytest

from repro.config import PipelineConfig
from repro.errors import IsaError
from repro.isa import (
    ALWAYS,
    Bundle,
    ControlKind,
    Guard,
    Instruction,
    MemType,
    NOP,
    OPCODE_TABLE,
    Opcode,
    SpecialReg,
    control_delay_slots,
    opcode_from_mnemonic,
    parse_gpr,
    parse_pred,
    parse_special,
    result_delay_slots,
)


class TestRegisters:
    def test_parse_gpr(self):
        assert parse_gpr("r0") == 0
        assert parse_gpr("R31") == 31
        assert parse_gpr(5) == 5

    def test_parse_gpr_rejects_bad_names(self):
        with pytest.raises(IsaError):
            parse_gpr("r32")
        with pytest.raises(IsaError):
            parse_gpr("x1")
        with pytest.raises(IsaError):
            parse_gpr("rx")

    def test_parse_pred(self):
        assert parse_pred("p0") == 0
        assert parse_pred("p7") == 7
        with pytest.raises(IsaError):
            parse_pred("p8")

    def test_parse_special(self):
        assert parse_special("st") is SpecialReg.ST
        assert parse_special(SpecialReg.SL) is SpecialReg.SL
        with pytest.raises(IsaError):
            parse_special("zz")


class TestOpcodeTable:
    def test_every_opcode_has_info(self):
        for opcode in Opcode:
            assert opcode in OPCODE_TABLE
            assert OPCODE_TABLE[opcode].mnemonic == opcode.value

    def test_mnemonic_lookup(self):
        assert opcode_from_mnemonic("add") is Opcode.ADD
        assert opcode_from_mnemonic("LWC") is Opcode.LWC
        with pytest.raises(IsaError):
            opcode_from_mnemonic("bogus")

    def test_typed_loads_cover_all_areas(self):
        load_types = {op.info.mem_type for op in Opcode if op.info.is_load}
        assert load_types == set(MemType)

    def test_typed_stores_cover_all_areas(self):
        store_types = {op.info.mem_type for op in Opcode if op.info.is_store}
        assert store_types == set(MemType)

    def test_memory_and_control_are_slot0_only(self):
        for opcode in Opcode:
            info = opcode.info
            if info.is_mem_access or info.is_control_flow or info.is_stack_control:
                assert info.slot0_only, opcode

    def test_main_memory_loads_are_decoupled(self):
        assert Opcode.LWM.info.is_decoupled_load
        assert not Opcode.LWC.info.is_decoupled_load

    def test_control_kinds(self):
        assert Opcode.BR.info.control is ControlKind.BRANCH
        assert Opcode.CALL.info.control is ControlKind.CALL
        assert Opcode.RET.info.control is ControlKind.RETURN
        assert Opcode.ADD.info.control is None

    def test_method_cache_users(self):
        assert Opcode.CALL.info.uses_method_cache
        assert Opcode.RET.info.uses_method_cache
        assert Opcode.BRCF.info.uses_method_cache
        assert not Opcode.BR.info.uses_method_cache

    def test_result_delays(self):
        pipeline = PipelineConfig()
        assert result_delay_slots(Opcode.ADD.info, pipeline) == 0
        assert result_delay_slots(Opcode.LWC.info, pipeline) == 1
        assert result_delay_slots(Opcode.MUL.info, pipeline) == 2
        assert result_delay_slots(Opcode.LWM.info, pipeline) == 0

    def test_control_delays(self):
        pipeline = PipelineConfig()
        assert control_delay_slots(Opcode.BR.info, pipeline) == 2
        assert control_delay_slots(Opcode.BRCF.info, pipeline) == 3
        assert control_delay_slots(Opcode.CALL.info, pipeline) == 3
        assert control_delay_slots(Opcode.RET.info, pipeline) == 3
        assert control_delay_slots(Opcode.ADD.info, pipeline) == 0


class TestGuard:
    def test_default_guard_is_always(self):
        assert ALWAYS.is_always
        assert not Guard(1, False).is_always
        assert not Guard(0, True).is_always

    def test_guard_rendering(self):
        assert str(Guard(3, False)) == "(p3)"
        assert str(Guard(3, True)) == "(!p3)"

    def test_guard_range_checked(self):
        with pytest.raises(IsaError):
            Guard(9, False)


class TestInstructionValidation:
    def test_alu_requires_operands(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert instr.rd == 1
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rd=1, rs1=2)  # missing rs2
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3, imm=5)  # extra imm

    def test_load_requires_imm(self):
        Instruction(Opcode.LWC, rd=1, rs1=2, imm=4)
        with pytest.raises(IsaError):
            Instruction(Opcode.LWC, rd=1, rs1=2)

    def test_branch_requires_target(self):
        Instruction(Opcode.BR, target="loop")
        with pytest.raises(IsaError):
            Instruction(Opcode.BR)

    def test_special_move_requires_special(self):
        Instruction(Opcode.MTS, special=SpecialReg.ST, rs1=1)
        with pytest.raises(IsaError):
            Instruction(Opcode.MTS, rs1=1)

    def test_register_range_checked(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rd=32, rs1=0, rs2=0)

    def test_defs_and_uses(self):
        instr = Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)
        assert instr.gpr_defs() == frozenset({3})
        assert instr.gpr_uses() == frozenset({1, 2})

    def test_r0_never_defined(self):
        instr = Instruction(Opcode.ADD, rd=0, rs1=1, rs2=2)
        assert instr.gpr_defs() == frozenset()

    def test_predicate_defs_uses(self):
        cmp = Instruction(Opcode.CMPLT, pd=2, rs1=1, rs2=3)
        assert cmp.pred_defs() == frozenset({2})
        guarded = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3,
                              guard=Guard(4, True))
        assert 4 in guarded.pred_uses()

    def test_mul_defines_specials(self):
        instr = Instruction(Opcode.MUL, rs1=1, rs2=2)
        assert instr.special_defs() == frozenset({SpecialReg.SL, SpecialReg.SH})

    def test_ret_uses_return_registers(self):
        instr = Instruction(Opcode.RET)
        assert instr.special_uses() == frozenset({SpecialReg.SRB, SpecialReg.SRO})

    def test_stack_load_uses_stack_top(self):
        instr = Instruction(Opcode.LWS, rd=1, rs1=0, imm=0)
        assert SpecialReg.ST in instr.special_uses()

    def test_lih_reads_its_destination(self):
        instr = Instruction(Opcode.LIH, rd=5, imm=0x1234)
        assert 5 in instr.gpr_uses()

    def test_rendering(self):
        instr = Instruction(Opcode.ADDI, rd=1, rs1=2, imm=5, guard=Guard(1, True))
        assert str(instr) == "(!p1) addi r1 = r2, 5"
        store = Instruction(Opcode.SWC, rs1=3, rs2=4, imm=8)
        assert str(store) == "swc [r3 + 8] = r4"


class TestBundle:
    def test_single_slot_bundle(self):
        bundle = Bundle(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert bundle.size_bytes == 4
        assert bundle.second is None

    def test_dual_slot_bundle(self):
        bundle = Bundle(Instruction(Opcode.LWC, rd=1, rs1=2, imm=0),
                        Instruction(Opcode.ADD, rd=3, rs1=4, rs2=5))
        assert bundle.size_bytes == 8
        assert len(bundle) == 2

    def test_long_immediate_occupies_whole_bundle(self):
        bundle = Bundle(Instruction(Opcode.ADDL, rd=1, rs1=0, imm=0x12345678))
        assert bundle.size_bytes == 8
        with pytest.raises(IsaError):
            Bundle(Instruction(Opcode.ADDL, rd=1, rs1=0, imm=1), NOP)

    def test_slot0_only_rejected_in_second_slot(self):
        with pytest.raises(IsaError):
            Bundle(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
                   Instruction(Opcode.LWC, rd=4, rs1=5, imm=0))

    def test_too_many_slots_rejected(self):
        with pytest.raises(IsaError):
            Bundle(NOP, NOP, NOP)
