"""Golden equivalence of the event-driven and quantum co-sim schedulers.

The event-driven scheduler (``scheduler="event"``) must be a pure
performance optimisation: for every workload kernel, every arbitration
policy and every core count, its per-core cycle counts, complete simulation
metrics (stall breakdowns, cache statistics, outputs), shared-arbiter
statistics and final shared-memory image must be *bit-identical* to the
quantum-polling reference scheduler (``scheduler="reference"``).  The suite
also covers the edge paths — halting order, ``max_bundles`` exhaustion,
strict-mode runs, heterogeneous configurations and the engine fallback.

The generated-code engine (``engine="jit"``) must hold the same property
one level down: for every matrix cell its per-core metrics, arbiter
statistics and final shared-memory image are bit-identical to the micro-op
engine (which the scheduler matrix above pins to the reference), and on the
heterogeneous mix it is checked directly against the quantum-polling
reference interpreter.
"""

import os

import pytest

from repro import PatmosConfig, compile_and_link
from repro.cmp import MulticoreSystem
from repro.errors import ConfigError, SimulationError
from repro.memory import TdmaSchedule
from repro.workloads import build_kernel
from repro.workloads.suite import KERNEL_BUILDERS

CONFIG = PatmosConfig()

CORE_COUNTS = (1, 2, 4, 8)

#: Arbiter columns of the golden matrix: TDMA, *weighted* TDMA, round-robin
#: and priority — the policies with genuinely different tie-break and grant
#: behaviour.  Weighted TDMA uses a 2x-burst base slot so the weight-1
#: slots still fit one burst transfer at every core count.
def _arbiter_kwargs(name, cores):
    if name == "tdma":
        return {"arbiter": "tdma"}
    if name == "tdma_weighted":
        slot = 2 * CONFIG.memory.burst_cycles()
        weights = tuple(2 if core == 0 else 1 for core in range(cores))
        return {"arbiter": "tdma",
                "schedule": TdmaSchedule(num_cores=cores, slot_cycles=slot,
                                         slot_weights=weights)}
    if name == "round_robin":
        return {"arbiter": "round_robin"}
    if name == "priority":
        # Non-identity priorities so the service order differs from core
        # order (exercises the static tie-rank path).
        return {"arbiter": "priority",
                "priorities": tuple(reversed(range(cores)))}
    raise AssertionError(name)


ARBITER_NAMES = ("tdma", "tdma_weighted", "round_robin", "priority")


@pytest.fixture(scope="module")
def images():
    """One compiled image per kernel (module-cached: compilation dominates)."""
    return {name: compile_and_link(build_kernel(name).program, CONFIG)[0]
            for name in KERNEL_BUILDERS}


@pytest.fixture(scope="module", autouse=True)
def _isolated_jit_cache(tmp_path_factory):
    """One shared, isolated on-disk jit cache for the whole module."""
    saved = os.environ.get("REPRO_JIT_CACHE_DIR")
    os.environ["REPRO_JIT_CACHE_DIR"] = \
        str(tmp_path_factory.mktemp("jitcache"))
    yield
    if saved is None:
        os.environ.pop("REPRO_JIT_CACHE_DIR", None)
    else:
        os.environ["REPRO_JIT_CACHE_DIR"] = saved


def _run(images_for_cores, scheduler, arbiter_name, cores, strict=True,
         max_bundles=2_000_000, **extra):
    kwargs = _arbiter_kwargs(arbiter_name, cores)
    kwargs.update(extra)
    system = MulticoreSystem(images_for_cores, CONFIG, mode="cosim",
                             scheduler=scheduler, **kwargs)
    result = system.run(analyse=False, strict=strict,
                        max_bundles=max_bundles)
    return system, result


def _assert_identical(images_for_cores, arbiter_name, cores, **extra):
    event_system, event = _run(images_for_cores, "event", arbiter_name,
                               cores, **extra)
    ref_system, reference = _run(images_for_cores, "reference", arbiter_name,
                                 cores, **extra)
    assert event.scheduler == "event"
    assert reference.scheduler == "reference"
    assert event.observed_by_core() == reference.observed_by_core()
    assert event.arbiter_stats == reference.arbiter_stats
    for event_core, ref_core in zip(event.cores, reference.cores):
        assert event_core.sim.metrics() == ref_core.sim.metrics()
        assert event_core.sim.output == ref_core.sim.output
    assert bytes(event_system.shared_memory._data) == \
        bytes(ref_system.shared_memory._data)
    return event, reference


def _assert_engines_identical(images_for_cores, arbiter_name, cores,
                              runs=(("jit", "event"), ("fast", "event")),
                              **extra):
    """Two (engine, scheduler) runs of one cell must be bit-identical."""
    (system_a, result_a), (system_b, result_b) = [
        _run(images_for_cores, scheduler, arbiter_name, cores,
             engine=engine, **extra)
        for engine, scheduler in runs]
    assert result_a.observed_by_core() == result_b.observed_by_core()
    assert result_a.arbiter_stats == result_b.arbiter_stats
    for core_a, core_b in zip(result_a.cores, result_b.cores):
        assert core_a.sim.metrics() == core_b.sim.metrics()
        assert core_a.sim.output == core_b.sim.output
    assert bytes(system_a.shared_memory._data) == \
        bytes(system_b.shared_memory._data)


@pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
@pytest.mark.parametrize("arbiter_name", ARBITER_NAMES)
def test_schedulers_identical_across_core_counts(images, kernel,
                                                 arbiter_name):
    """Event and reference scheduling agree for every matrix cell."""
    image = images[kernel]
    for cores in CORE_COUNTS:
        _assert_identical([image] * cores, arbiter_name, cores)


@pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
@pytest.mark.parametrize("arbiter_name", ARBITER_NAMES)
def test_jit_engine_identical_across_core_counts(images, kernel,
                                                 arbiter_name):
    """The generated-code engine agrees with the micro-op engine on every
    matrix cell (which the scheduler matrix pins to the reference)."""
    image = images[kernel]
    for cores in CORE_COUNTS:
        _assert_engines_identical([image] * cores, arbiter_name, cores)


@pytest.mark.parametrize("arbiter_name", ARBITER_NAMES)
def test_jit_engine_matches_reference_interpreter(images, arbiter_name):
    """Direct jit-vs-interpreter check: the event-driven generated-code
    co-simulation against quantum polling of the reference interpreter."""
    mix = [images["vector_sum"], images["stream_checksum"],
           images["fir_filter"], images["saturate"]]
    _assert_engines_identical(
        mix, arbiter_name, 4,
        runs=(("jit", "event"), ("reference", "reference")))


@pytest.mark.parametrize("arbiter_name", ARBITER_NAMES)
def test_schedulers_identical_on_heterogeneous_mix(images, arbiter_name):
    """A mixed workload (diverging clocks, staggered halts) stays identical."""
    mix = [images["vector_sum"], images["stream_checksum"],
           images["fir_filter"], images["saturate"]]
    for cores in (2, 4, 8):
        _assert_identical([mix[i % len(mix)] for i in range(cores)],
                          arbiter_name, cores)


def test_event_scheduler_is_the_default(images):
    system = MulticoreSystem([images["vector_sum"]] * 2, CONFIG,
                             mode="cosim")
    result = system.run(analyse=False)
    assert result.scheduler == "event"
    assert result.scheduler_stats["scheduler"] == "event"
    assert system.shared_memory is not None


def test_unknown_scheduler_rejected(images):
    with pytest.raises(ConfigError):
        MulticoreSystem([images["vector_sum"]], CONFIG, mode="cosim",
                        scheduler="optimistic")


def test_reference_engine_falls_back_to_quantum_scheduler(images):
    """scheduler="event" needs the fast engine; the interpreter falls back —
    with identical timing, which is exactly what the fallback relies on."""
    image = images["stream_checksum"]
    fallback = MulticoreSystem([image] * 2, CONFIG, mode="cosim",
                               scheduler="event", engine="reference")
    result = fallback.run(analyse=False, strict=True)
    assert result.scheduler == "reference"
    event = MulticoreSystem([image] * 2, CONFIG, mode="cosim").run(
        analyse=False, strict=True)
    assert result.observed_by_core() == event.observed_by_core()


@pytest.mark.parametrize("scheduler", ("event", "reference"))
def test_max_bundles_exhaustion_raises(images, scheduler):
    """Both schedulers surface the engine's bundle-budget error."""
    mix = [images["vector_sum"], images["stream_checksum"]]
    with pytest.raises(SimulationError):
        _run(mix, scheduler, "round_robin", 2, max_bundles=20)


@pytest.mark.parametrize("arbiter_name", ("tdma", "round_robin"))
def test_staggered_halting_last_core_runs_free(images, arbiter_name):
    """Cores halting at very different times (the last one free-running to
    completion in the event scheduler) keep the equivalence."""
    # large_function runs ~30x longer than saturate, so three cores halt
    # early and one long tail exercises the single-survivor fast path.
    mix = [images["saturate"], images["saturate"], images["saturate"],
           images["large_function"]]
    event, reference = _assert_identical(mix, arbiter_name, 4)
    cycles = event.observed_by_core()
    assert max(cycles) > 2 * min(cycles)  # the tail is genuinely staggered


def test_scheduler_stats_recorded(images):
    mix = [images["vector_sum"], images["fir_filter"]]
    _, event = _run(mix, "event", "round_robin", 2)
    _, reference = _run(mix, "reference", "round_robin", 2)
    assert event.scheduler_stats["slices"] > 0
    assert event.scheduler_stats["releases"] >= 0
    assert reference.scheduler_stats["quantum"] == 1
    # The entire point: the event scheduler re-enters the engine far less
    # often than quantum polling.
    assert event.scheduler_stats["slices"] < \
        reference.scheduler_stats["slices"]
