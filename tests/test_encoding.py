"""Binary encoding/decoding tests, including property-based round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.isa import Bundle, Guard, Instruction, Opcode, SpecialReg
from repro.isa.encoding import (
    decode_bundle,
    decode_bundles,
    decode_instruction,
    encode_bundle,
    encode_bundles,
    encode_instruction,
    sign_extend,
)

REPRESENTATIVE = [
    Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
    Instruction(Opcode.NOR, rd=31, rs1=0, rs2=17, guard=Guard(3, True)),
    Instruction(Opcode.ADDI, rd=4, rs1=5, imm=-2048),
    Instruction(Opcode.SRAI, rd=4, rs1=5, imm=31),
    Instruction(Opcode.CMPIEQ, pd=3, rs1=7, imm=2047),
    Instruction(Opcode.CMPULT, pd=7, rs1=1, rs2=2),
    Instruction(Opcode.LIL, rd=9, imm=-32768),
    Instruction(Opcode.LIH, rd=9, imm=0xFFFF),
    Instruction(Opcode.ADDL, rd=10, rs1=0, imm=0x12345678),
    Instruction(Opcode.MUL, rs1=3, rs2=4),
    Instruction(Opcode.PAND, pd=1, ps1=2, ps2=3),
    Instruction(Opcode.PNOT, pd=4, ps1=5),
    Instruction(Opcode.LWC, rd=1, rs1=2, imm=32),
    Instruction(Opcode.LBUM, rd=1, rs1=2, imm=-16),
    Instruction(Opcode.LHS, rd=3, rs1=0, imm=6),
    Instruction(Opcode.SWC, rs1=2, rs2=4, imm=-64),
    Instruction(Opcode.SBL, rs1=2, rs2=4, imm=7),
    Instruction(Opcode.SRES, imm=42),
    Instruction(Opcode.SENS, imm=0),
    Instruction(Opcode.SFREE, imm=100000),
    Instruction(Opcode.BR, target=0x10040, guard=Guard(1, False)),
    Instruction(Opcode.BRCF, target=0x0FF00),
    Instruction(Opcode.CALL, target=0x20000),
    Instruction(Opcode.CALLR, rs1=5),
    Instruction(Opcode.RET),
    Instruction(Opcode.MTS, special=SpecialReg.SS, rs1=7),
    Instruction(Opcode.MFS, rd=8, special=SpecialReg.SH),
    Instruction(Opcode.WMEM),
    Instruction(Opcode.NOP),
    Instruction(Opcode.HALT),
    Instruction(Opcode.OUT, rs1=12),
]


class TestInstructionRoundTrip:
    @pytest.mark.parametrize("instr", REPRESENTATIVE, ids=lambda i: str(i))
    def test_round_trip(self, instr):
        addr = 0x10000
        encoded = encode_instruction(instr, addr=addr)
        words = list(encoded.words)
        decoded, consumed = decode_instruction(
            words[0], addr=addr, next_word=words[1] if len(words) > 1 else None)
        assert consumed == len(words)
        assert decoded.opcode is instr.opcode
        assert decoded.guard == instr.guard
        for fieldname in ("rd", "rs1", "rs2", "pd", "ps1", "special"):
            expected = getattr(instr, fieldname)
            if expected is not None:
                assert getattr(decoded, fieldname) == expected, fieldname

    def test_branch_target_reconstructed(self):
        instr = Instruction(Opcode.BR, target=0x10080)
        words = encode_instruction(instr, addr=0x10000).words
        decoded, _ = decode_instruction(words[0], addr=0x10000)
        assert decoded.target == 0x10080

    def test_negative_branch_offset(self):
        instr = Instruction(Opcode.BR, target=0x0FF00)
        words = encode_instruction(instr, addr=0x10000).words
        decoded, _ = decode_instruction(words[0], addr=0x10000)
        assert decoded.target == 0x0FF00

    def test_call_target_is_absolute(self):
        instr = Instruction(Opcode.CALL, target=0x40000)
        words = encode_instruction(instr, addr=0x10000).words
        decoded, _ = decode_instruction(words[0], addr=0x99999 & ~3)
        assert decoded.target == 0x40000


class TestEncodingErrors:
    def test_immediate_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=5000))

    def test_unaligned_load_offset_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.LWC, rd=1, rs1=2, imm=3))

    def test_symbolic_target_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.BR, target="loop"))

    def test_unresolved_symbol_in_long_immediate(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.ADDL, rd=1, rs1=0,
                                           target="symbol"))

    def test_decode_invalid_opclass(self):
        with pytest.raises(EncodingError):
            decode_instruction(31 << 22)


class TestBundleEncoding:
    def test_single_bundle_round_trip(self):
        bundle = Bundle(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        words = encode_bundle(bundle, addr=0x10000)
        assert len(words) == 1
        decoded, consumed = decode_bundle(words, addr=0x10000)
        assert consumed == 1
        assert decoded.first.opcode is Opcode.ADD

    def test_dual_bundle_sets_bundle_bit(self):
        bundle = Bundle(Instruction(Opcode.LWC, rd=1, rs1=2, imm=0),
                        Instruction(Opcode.ADD, rd=3, rs1=4, rs2=5))
        words = encode_bundle(bundle, addr=0)
        assert len(words) == 2
        assert words[0] >> 31 == 1
        assert words[1] >> 31 == 0
        decoded, consumed = decode_bundle(words, addr=0)
        assert consumed == 2
        assert len(decoded) == 2

    def test_long_immediate_bundle(self):
        bundle = Bundle(Instruction(Opcode.ORL, rd=2, rs1=3, imm=0xDEADBEEF))
        words = encode_bundle(bundle, addr=0)
        assert len(words) == 2
        decoded, consumed = decode_bundle(words, addr=0)
        assert consumed == 2
        assert decoded.first.imm & 0xFFFFFFFF == 0xDEADBEEF

    def test_stream_round_trip(self):
        bundles = [
            Bundle(Instruction(Opcode.LIL, rd=1, imm=100)),
            Bundle(Instruction(Opcode.ADDL, rd=2, rs1=1, imm=1 << 20)),
            Bundle(Instruction(Opcode.LWC, rd=3, rs1=2, imm=4),
                   Instruction(Opcode.ADD, rd=4, rs1=1, rs2=1)),
            Bundle(Instruction(Opcode.HALT)),
        ]
        words = encode_bundles(bundles, base_addr=0x10000)
        decoded = decode_bundles(words, base_addr=0x10000)
        assert len(decoded) == len(bundles)
        opcodes = [entry[1].first.opcode for entry in decoded]
        assert opcodes == [Opcode.LIL, Opcode.ADDL, Opcode.LWC, Opcode.HALT]


class TestSignExtend:
    @pytest.mark.parametrize("value,width,expected", [
        (0, 12, 0),
        (2047, 12, 2047),
        (2048, 12, -2048),
        (4095, 12, -1),
        (0xFFFF, 16, -1),
        (0x7FFF, 16, 32767),
    ])
    def test_sign_extend(self, value, width, expected):
        assert sign_extend(value, width) == expected


# ---------------------------------------------------------------------------
# Property-based round-trips
# ---------------------------------------------------------------------------

_gpr = st.integers(min_value=0, max_value=31)
_pred = st.integers(min_value=0, max_value=7)
_guard = st.builds(Guard, _pred, st.booleans())


@st.composite
def alu_instructions(draw):
    opcode = draw(st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.AND,
                                   Opcode.OR, Opcode.XOR, Opcode.SHADD2]))
    return Instruction(opcode, guard=draw(_guard), rd=draw(_gpr),
                       rs1=draw(_gpr), rs2=draw(_gpr))


@st.composite
def imm_instructions(draw):
    opcode = draw(st.sampled_from([Opcode.ADDI, Opcode.SUBI, Opcode.ANDI,
                                   Opcode.ORI, Opcode.XORI]))
    return Instruction(opcode, guard=draw(_guard), rd=draw(_gpr),
                       rs1=draw(_gpr),
                       imm=draw(st.integers(min_value=-2048, max_value=2047)))


@st.composite
def load_instructions(draw):
    opcode = draw(st.sampled_from([Opcode.LWC, Opcode.LWS, Opcode.LWL,
                                   Opcode.LWO, Opcode.LWM]))
    offset = draw(st.integers(min_value=-64, max_value=63)) * 4
    return Instruction(opcode, guard=draw(_guard), rd=draw(_gpr),
                       rs1=draw(_gpr), imm=offset)


@given(st.one_of(alu_instructions(), imm_instructions(), load_instructions()))
@settings(max_examples=200, deadline=None)
def test_property_encode_decode_round_trip(instr):
    words = encode_instruction(instr, addr=0x10000).words
    decoded, consumed = decode_instruction(
        words[0], addr=0x10000, next_word=words[1] if len(words) > 1 else None)
    assert consumed == len(words)
    assert decoded == instr


@given(st.integers(min_value=-(1 << 21), max_value=(1 << 21) - 1))
@settings(max_examples=100, deadline=None)
def test_property_branch_offsets_round_trip(offset_words):
    addr = 0x400000
    target = addr + 4 * offset_words
    instr = Instruction(Opcode.BR, target=target)
    words = encode_instruction(instr, addr=addr).words
    decoded, _ = decode_instruction(words[0], addr=addr)
    assert decoded.target == target
