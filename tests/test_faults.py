"""Tests of the fault-injection subsystem (repro.faults) — PR 7.

Four layers:

* the plan model — seeded generation, serialisation round-trips, content
  hashes, validation;
* the injection mechanics threaded through the co-simulation — ECC
  correction, raw bit flips, bounded bus retries, the unrecoverable path,
  and above all the *zero-overhead gate*: an empty plan must be
  bit-identical to a fault-free run on both schedulers;
* the watchdog (cycle and wall-clock budgets raising a structured
  :class:`SimulationTimeout`);
* the RTOS fault layer — interrupt storms and WCET-overrun policies, with
  event and reference schedulers agreeing on every timing figure.
"""


import pytest

from repro.compiler import compile_and_link
from repro.config import DEFAULT_CONFIG
from repro.cmp.system import MulticoreSystem
from repro.errors import (ConfigError, FaultInjectionError, ReproError,
                          SimulationTimeout)
from repro.faults import (BusFault, FaultPlan, MemoryFault, OverrunFault,
                          StormFault, run_fault_campaign)
from repro.workloads.suite import build_kernel

CONFIG = DEFAULT_CONFIG


def _image(kernel="vector_sum"):
    built = build_kernel(kernel)
    image, _ = compile_and_link(built.program, CONFIG)
    return image, built.expected_output


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        kwargs = dict(num_cores=2, horizon=1000,
                      bank_bytes=CONFIG.memory.size_bytes,
                      memory_flips=4, bus_errors=3, storms=2, overruns=2)
        one = FaultPlan.generate(7, **kwargs)
        two = FaultPlan.generate(7, **kwargs)
        assert one == two
        assert one.content_hash() == two.content_hash()
        assert FaultPlan.generate(8, **kwargs) != one

    def test_roundtrip_and_hash(self):
        plan = FaultPlan.generate(3, 2, 500, CONFIG.memory.size_bytes,
                                  memory_flips=2, bus_errors=2, storms=1,
                                  overruns=1, ecc=True)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.content_hash() == plan.content_hash()
        assert len(again) == len(plan) > 0
        assert not plan.empty
        assert FaultPlan().empty

    def test_validate_rejects_out_of_range_events(self):
        bad_core = FaultPlan(memory_faults=(
            MemoryFault(cycle=0, core_id=9, addr=0, bit=0),))
        with pytest.raises(FaultInjectionError):
            bad_core.validate(2, CONFIG.memory.size_bytes)
        bad_addr = FaultPlan(memory_faults=(
            MemoryFault(cycle=0, core_id=0,
                        addr=CONFIG.memory.size_bytes, bit=0),))
        with pytest.raises(FaultInjectionError):
            bad_addr.validate(2, CONFIG.memory.size_bytes)

    def test_fault_overhead_counts_planned_ecc_corrections(self):
        plan = FaultPlan(memory_faults=(
            MemoryFault(cycle=10, core_id=0, addr=4, bit=1),
            MemoryFault(cycle=20, core_id=0, addr=8, bit=2),
            MemoryFault(cycle=30, core_id=1, addr=12, bit=3),
        ), ecc=True, ecc_latency_cycles=5)
        assert plan.fault_overhead_cycles(0) == 10
        assert plan.fault_overhead_cycles(1) == 5
        assert FaultPlan().fault_overhead_cycles(0) == 0


class TestEmptyPlanBitIdentity:
    """The zero-overhead gate: an empty plan changes nothing, anywhere."""

    @pytest.mark.parametrize("scheduler", ["event", "reference"])
    @pytest.mark.parametrize("arbiter", ["tdma", "round_robin"])
    def test_empty_plan_bit_identical(self, scheduler, arbiter):
        image, expected = _image()
        runs = []
        for faults in (None, FaultPlan()):
            system = MulticoreSystem([image] * 2, CONFIG, arbiter=arbiter,
                                     mode="cosim", scheduler=scheduler,
                                     faults=faults)
            result = system.run(analyse=False)
            runs.append((result.observed_by_core(),
                         system.shared_memory.image_digest(),
                         result.system_stats(),
                         [list(core.sim.output) for core in result.cores]))
        baseline, with_empty_plan = runs
        assert with_empty_plan == baseline
        assert [out == expected for out in baseline[3]] == [True, True]

    def test_empty_plan_has_no_fault_log(self):
        image, _ = _image()
        result = MulticoreSystem([image] * 2, CONFIG, mode="cosim",
                                 faults=FaultPlan()).run(analyse=False)
        assert result.fault_log is None


class TestMemoryFaultInjection:
    def _run(self, plan, cores=2, kernel="vector_sum", **run_kwargs):
        image, expected = _image(kernel)
        system = MulticoreSystem([image] * cores, CONFIG, mode="cosim",
                                 faults=plan)
        result = system.run(analyse=False, **run_kwargs)
        return system, result, expected

    def test_ecc_corrects_and_charges_latency(self):
        baseline_sys, baseline, expected = self._run(None)

        def faulted(latency):
            plan = FaultPlan(memory_faults=(
                MemoryFault(cycle=50, core_id=0, addr=16, bit=3),
                MemoryFault(cycle=90, core_id=1, addr=64, bit=0),
            ), ecc=True, ecc_latency_cycles=latency)
            return self._run(plan)

        system, result, _ = faulted(7)
        assert result.fault_log.counts() == {"corrected": 2}
        # ECC leaves the data untouched: the final memory image and the
        # outputs match the fault-free run exactly.
        assert (system.shared_memory.image_digest()
                == baseline_sys.shared_memory.image_digest())
        assert all(core.sim.output == expected for core in result.cores)
        # The correction latency lands on the flipped cores' clocks: a much
        # larger latency must make both cores strictly slower (the exact
        # delta also folds in TDMA slot realignment, so only monotonicity
        # is architectural).
        _, slow, _ = faulted(2000)
        assert slow.observed_by_core()[0] > result.observed_by_core()[0]
        assert slow.observed_by_core()[1] > result.observed_by_core()[1]
        assert (slow.observed_by_core()[0]
                > baseline.observed_by_core()[0])

    def test_uncorrected_flip_changes_memory_image(self):
        baseline_sys, _, _ = self._run(None)
        # A flip in an address region the kernel never rewrites: the damage
        # must be visible in the final image.
        heap = CONFIG.memory_map.heap_base
        plan = FaultPlan(memory_faults=(
            MemoryFault(cycle=10, core_id=0, addr=heap + 128, bit=5),))
        system, result, _ = self._run(plan)
        assert result.fault_log.counts() == {"flipped": 1}
        assert (system.shared_memory.image_digest()
                != baseline_sys.shared_memory.image_digest())

    def test_post_halt_flips_drain_onto_final_image(self):
        # A flip scheduled far beyond the makespan still lands on the final
        # memory image, without extending execution.
        _, baseline, _ = self._run(None)
        heap = CONFIG.memory_map.heap_base
        plan = FaultPlan(memory_faults=(
            MemoryFault(cycle=10_000_000, core_id=0,
                        addr=heap + 256, bit=1),))
        system, result, _ = self._run(plan)
        assert result.fault_log.counts() == {"flipped": 1}
        assert result.observed_by_core() == baseline.observed_by_core()

    def test_same_seed_same_log(self):
        image, _ = _image()
        plan = FaultPlan.generate(11, 2, 600, CONFIG.memory.size_bytes,
                                  memory_flips=3, bus_errors=2, ecc=True)
        hashes = set()
        for _ in range(2):
            system = MulticoreSystem([image] * 2, CONFIG, mode="cosim",
                                     faults=plan)
            result = system.run(analyse=False)
            hashes.add(result.fault_log.determinism_hash())
        assert len(hashes) == 1

    def test_analytic_mode_rejects_faults(self):
        image, _ = _image()
        plan = FaultPlan(memory_faults=(
            MemoryFault(cycle=0, core_id=0, addr=0, bit=0),))
        with pytest.raises(ConfigError):
            MulticoreSystem([image] * 2, CONFIG, mode="analytic",
                            faults=plan)

    def test_plan_validated_against_system(self):
        image, _ = _image()
        plan = FaultPlan(memory_faults=(
            MemoryFault(cycle=0, core_id=7, addr=0, bit=0),))
        with pytest.raises(FaultInjectionError):
            MulticoreSystem([image] * 2, CONFIG, mode="cosim", faults=plan)


class TestBusFaultInjection:
    def test_bounded_retry_delays_only_the_faulted_core(self):
        image, _ = _image()
        baseline = MulticoreSystem([image] * 2, CONFIG, arbiter="tdma",
                                   mode="cosim").run(analyse=False)
        plan = FaultPlan(bus_faults=(BusFault(core_id=0, index=2, errors=2),),
                        bus_retry_limit=2)
        result = MulticoreSystem([image] * 2, CONFIG, arbiter="tdma",
                                 mode="cosim",
                                 faults=plan).run(analyse=False)
        assert result.fault_log.counts() == {"retried": 1}
        assert (result.observed_by_core()[0]
                > baseline.observed_by_core()[0])
        # The TDMA decoupling property holds under faults: the other
        # core's timing is untouched by core 0's retries.
        assert (result.observed_by_core()[1]
                == baseline.observed_by_core()[1])

    def test_exhausted_retries_raise_unrecovered(self):
        image, _ = _image()
        plan = FaultPlan(bus_faults=(BusFault(core_id=0, index=1, errors=5),),
                        bus_retry_limit=1)
        system = MulticoreSystem([image] * 2, CONFIG, mode="cosim",
                                 faults=plan)
        with pytest.raises(FaultInjectionError) as info:
            system.run(analyse=False)
        assert info.value.core_id == 0
        assert system.fault_log.counts() == {"unrecovered": 1}

    def test_retries_stay_inside_fault_aware_wcet(self):
        from repro.wcet.analyzer import analyze_wcet
        image, _ = _image()
        plan = FaultPlan(bus_faults=(
            BusFault(core_id=0, index=1, errors=2),
            BusFault(core_id=0, index=5, errors=1),
        ), bus_retry_limit=2)
        system = MulticoreSystem([image] * 2, CONFIG, arbiter="tdma",
                                 mode="cosim", faults=plan)
        result = system.run(analyse=False)
        for core_id in range(2):
            options = system.wcet_options_for_core(
                core_id, bus_retry_limit=plan.bus_retry_limit,
                fault_overhead_cycles=plan.fault_overhead_cycles(core_id))
            bound = analyze_wcet(image, config=CONFIG,
                                 options=options).wcet_cycles
            assert result.observed_by_core()[core_id] <= bound


class TestWatchdog:
    @pytest.mark.parametrize("scheduler", ["event", "reference"])
    def test_cycle_budget_raises_structured_timeout(self, scheduler):
        image, _ = _image()
        system = MulticoreSystem([image] * 2, CONFIG, mode="cosim",
                                 scheduler=scheduler)
        with pytest.raises(SimulationTimeout) as info:
            system.run(analyse=False, max_cycles=50)
        assert info.value.kind == "cycles"
        assert info.value.limit == 50
        assert info.value.context()["cycle"] >= 50

    def test_wall_clock_budget(self):
        # The reference scheduler probes the deadline every slice, so an
        # already-expired budget trips on the very first one.  (The event
        # fast path only probes between chunks, so a program shorter than
        # one chunk may legitimately finish first there.)
        image, _ = _image()
        system = MulticoreSystem([image] * 2, CONFIG, mode="cosim",
                                 scheduler="reference")
        with pytest.raises(SimulationTimeout) as info:
            system.run(analyse=False, max_wall_s=0.0)
        assert info.value.kind == "wall_clock"

    def test_generous_budget_changes_nothing(self):
        image, _ = _image()
        baseline = MulticoreSystem([image] * 2, CONFIG,
                                   mode="cosim").run(analyse=False)
        watched = MulticoreSystem([image] * 2, CONFIG, mode="cosim").run(
            analyse=False, max_cycles=10_000_000, max_wall_s=600.0)
        assert (watched.observed_by_core()
                == baseline.observed_by_core())

    def test_analytic_mode_rejects_watchdog(self):
        image, _ = _image()
        system = MulticoreSystem([image] * 2, CONFIG, mode="analytic")
        with pytest.raises(ConfigError):
            system.run(max_cycles=100)


class TestRtosFaults:
    def _system(self, policy, faults, scheduler="event", factor=1.05):
        from repro.rtos.system import RtosSystem
        from repro.rtos.task import RtosOptions, task_from_kernel

        kernel = build_kernel("vector_sum")
        task = task_from_kernel(kernel, period=4000, priority=0,
                                config=CONFIG)
        options = RtosOptions(overrun_policy=policy, watchdog_factor=factor)
        return RtosSystem([[task], [task]], config=CONFIG, horizon=8000,
                          options=options, scheduler=scheduler,
                          faults=faults)

    def test_storm_releases_are_logged_and_delivered(self):
        plan = FaultPlan(storm_faults=(
            StormFault(core_id=0, task_index=0, time=500, count=2,
                       spacing=40),))
        result = self._system("kill_and_log", plan).run(analyse=False)
        assert result.fault_log.counts()["released"] == 2
        storm_core = result.per_core[0]
        calm_core = result.per_core[1]
        assert storm_core["interrupts"] > calm_core["interrupts"]

    @pytest.mark.parametrize("policy,outcome_key", [
        ("kill_and_log", "killed"),
        ("skip_next_release", "overrun"),
        ("degrade", "degraded"),
    ])
    def test_overrun_policies(self, policy, outcome_key):
        plan = FaultPlan(overrun_faults=(
            OverrunFault(core_id=0, task_index=0, job_index=0,
                         extra_cycles=50_000),))
        result = self._system(policy, plan).run(analyse=False)
        assert result.fault_log.counts()[outcome_key] == 1
        task = result.tasks[0]
        if policy == "kill_and_log":
            assert task.killed == 1
        elif policy == "skip_next_release":
            assert task.shed == 1

    @pytest.mark.parametrize("policy", ["kill_and_log",
                                        "skip_next_release", "degrade"])
    def test_schedulers_agree_under_faults(self, policy):
        plan = FaultPlan(
            storm_faults=(StormFault(core_id=0, task_index=0, time=700,
                                     count=2, spacing=60),),
            overrun_faults=(OverrunFault(core_id=1, task_index=0,
                                         job_index=0,
                                         extra_cycles=50_000),),
            bus_faults=(BusFault(core_id=0, index=3, errors=1),))
        runs = {}
        for scheduler in ("event", "reference"):
            result = self._system(policy, plan,
                                  scheduler=scheduler).run(analyse=False)
            runs[scheduler] = (result.timing_dict(),
                               result.fault_log.determinism_hash())
        assert runs["event"] == runs["reference"]

    def test_rtos_rejects_memory_flips(self):
        plan = FaultPlan(memory_faults=(
            MemoryFault(cycle=0, core_id=0, addr=0, bit=0),))
        with pytest.raises((FaultInjectionError, ReproError)):
            self._system("kill_and_log", plan)


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fault_campaign(seed=5, kernels=("vector_sum",),
                                  cores=(2,), memory_flips=2, bus_errors=2)

    def test_campaign_stays_inside_fault_aware_bounds(self, report):
        assert report.ok
        assert report.violations() == []
        counts = report.counts()
        assert counts.get("unrecovered", 0) == 0
        assert counts.get("corrected", 0) + counts.get("retried", 0) > 0
        for cell in report.cells:
            assert cell.outputs_ok
            assert max(cell.faulted_cycles) >= max(cell.baseline_cycles)

    def test_campaign_is_reproducible(self, report):
        again = run_fault_campaign(seed=5, kernels=("vector_sum",),
                                   cores=(2,), memory_flips=2, bus_errors=2)
        assert again.determinism_hash() == report.determinism_hash()
        one, two = report.to_dict(), again.to_dict()
        one.pop("elapsed_s"), two.pop("elapsed_s")
        assert one == two

    def test_report_serialises_and_renders(self, report):
        import json
        payload = report.to_dict()
        assert payload["schema"] == "repro.faults/v1"
        assert payload["ok"] is True
        json.dumps(payload)
        assert "fault campaign" in report.summary()
        assert "vector_sum/2core/tdma" in report.table()

    def test_cell_errors_are_contained(self, monkeypatch):
        from repro.faults import campaign as campaign_module

        real = campaign_module._run_cell

        def boom(*args, **kwargs):
            cell = real(*args, **kwargs)
            cell.error = "SimulationError: injected for the test"
            return cell
        monkeypatch.setattr(campaign_module, "_run_cell", boom)
        report = run_fault_campaign(seed=0, kernels=("vector_sum",),
                                    cores=(2,))
        assert not report.ok
        assert "FAILURES" in report.summary()


class TestWcetFaultModel:
    def test_retry_limit_inflates_the_bound(self):
        from repro.wcet.analyzer import WcetOptions, analyze_wcet
        image, _ = _image()
        plain = analyze_wcet(image, config=CONFIG).wcet_cycles
        retried = analyze_wcet(
            image, config=CONFIG,
            options=WcetOptions(bus_retry_limit=2)).wcet_cycles
        overhead = analyze_wcet(
            image, config=CONFIG,
            options=WcetOptions(fault_overhead_cycles=123)).wcet_cycles
        assert retried > plain
        assert overhead == plain + 123

    def test_negative_options_rejected(self):
        from repro.errors import WcetError
        from repro.wcet.analyzer import WcetOptions, analyze_wcet
        image, _ = _image()
        for bad in (WcetOptions(bus_retry_limit=-1),
                    WcetOptions(fault_overhead_cycles=-1)):
            with pytest.raises(WcetError):
                analyze_wcet(image, config=CONFIG, options=bad)


class TestErrorTaxonomy:
    def test_simulation_timeout_context(self):
        exc = SimulationTimeout("boom", kind="cycles", limit=10, cycle=12,
                                core_id=1)
        assert exc.context() == {"kind": "cycles", "limit": 10,
                                 "cycle": 12, "core": 1,
                                 "max_cycles": 10, "max_wall_s": None,
                                 "cycles_completed": 12}

    def test_simulation_timeout_structured_budgets(self):
        # Both armed budgets survive structurally regardless of which fired,
        # so journal entries can report how far a timed-out cell got.
        exc = SimulationTimeout("boom", kind="wall_clock", limit=2.5,
                                cycle=900, core_id=0, max_cycles=1000,
                                max_wall_s=2.5)
        assert exc.max_cycles == 1000
        assert exc.max_wall_s == 2.5
        assert exc.cycles_completed == 900
        assert exc.context()["max_wall_s"] == 2.5
        # The fired budget doubles as the matching structured field when
        # only ``limit`` was supplied (legacy raise sites).
        legacy = SimulationTimeout("boom", kind="wall_clock", limit=1.0)
        assert legacy.max_wall_s == 1.0
        assert legacy.max_cycles is None

    def test_failed_cell_from_exception(self):
        from repro.errors import FailedCell, WorkerCrashed
        exc = WorkerCrashed("died", cell_key="k", attempts=3)
        cell = FailedCell.from_exception("k", "label", exc, attempts=3)
        assert cell.error == "WorkerCrashed"
        assert cell.context == {"cell_key": "k", "attempts": 3}
        assert "after 3 attempts" in cell.summary()
        assert cell.to_dict()["attempts"] == 3
