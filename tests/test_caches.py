"""Tests for the method cache, set-associative caches and the stack cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches import (
    CacheHierarchy,
    HierarchyOptions,
    IdealCache,
    MethodCache,
    SetAssociativeCache,
    StackCache,
)
from repro.config import (
    MemoryConfig,
    MethodCacheConfig,
    PatmosConfig,
    SetAssocCacheConfig,
    StackCacheConfig,
)
from repro.errors import StackCacheError
from repro.isa import MemType

MEM = MemoryConfig(burst_words=4, setup_cycles=6, cycles_per_word=2)


class TestMethodCache:
    def _cache(self, replacement="fifo"):
        return MethodCache(MethodCacheConfig(size_bytes=1024, num_blocks=4,
                                             replacement=replacement), MEM)

    def test_first_access_misses_then_hits(self):
        cache = self._cache()
        first = cache.access("f", 200)
        assert not first.hit and first.stall_cycles > 0
        second = cache.access("f", 200)
        assert second.hit and second.stall_cycles == 0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_fill_cost_scales_with_function_size(self):
        cache = self._cache()
        small = cache.access("small", 16).stall_cycles
        large = cache.access("large", 512).stall_cycles
        assert large > small
        assert small == MEM.transfer_cycles(4)

    def test_blocks_for(self):
        cache = self._cache()
        assert cache.blocks_for(1) == 1
        assert cache.blocks_for(256) == 1
        assert cache.blocks_for(257) == 2

    def test_fifo_eviction_order(self):
        cache = self._cache()
        for name in ("a", "b", "c", "d"):
            cache.access(name, 256)  # each occupies one block
        result = cache.access("e", 256)
        assert "a" in result.evicted
        assert not cache.contains("a")
        assert cache.contains("b")

    def test_lru_eviction_order(self):
        cache = self._cache(replacement="lru")
        for name in ("a", "b", "c", "d"):
            cache.access(name, 256)
        cache.access("a", 256)          # touch a → b becomes LRU
        result = cache.access("e", 256)
        assert "b" in result.evicted
        assert cache.contains("a")

    def test_large_function_evicts_multiple(self):
        cache = self._cache()
        for name in ("a", "b", "c", "d"):
            cache.access(name, 256)
        result = cache.access("big", 512)
        assert len(result.evicted) == 2

    def test_oversized_function_streams(self):
        cache = self._cache()
        result = cache.access("huge", 4096)
        assert result.oversized and not result.hit
        assert not cache.contains("huge")
        # A later access misses again.
        assert not cache.access("huge", 4096).hit

    def test_flush(self):
        cache = self._cache()
        cache.access("f", 100)
        cache.flush()
        assert not cache.contains("f")


class TestSetAssociativeCache:
    def _cache(self, **kwargs):
        defaults = dict(size_bytes=256, line_bytes=16, associativity=2)
        defaults.update(kwargs)
        return SetAssociativeCache(SetAssocCacheConfig(**defaults), MEM)

    def test_miss_then_hit(self):
        cache = self._cache()
        assert not cache.read(0x100).hit
        assert cache.read(0x104).hit  # same line
        assert cache.stats.misses == 1

    def test_miss_cost_is_line_fill(self):
        cache = self._cache()
        assert cache.read(0).stall_cycles == MEM.transfer_cycles(4)

    def test_set_conflict_eviction(self):
        cache = self._cache()
        sets = cache.num_sets
        line = cache.config.line_bytes
        base = 0x1000
        addresses = [base + way * sets * line for way in range(3)]
        for addr in addresses:
            cache.read(addr)
        # Two ways: the first address was evicted by the third.
        assert not cache.read(addresses[0]).hit

    def test_lru_keeps_recently_used(self):
        cache = self._cache()
        sets = cache.num_sets
        line = cache.config.line_bytes
        a, b, c = (0x1000 + i * sets * line for i in range(3))
        cache.read(a)
        cache.read(b)
        cache.read(a)       # a most recently used
        cache.read(c)       # evicts b
        assert cache.read(a).hit
        assert not cache.read(b).hit

    def test_write_through_no_allocate(self):
        cache = self._cache()
        result = cache.write(0x200)
        assert not result.hit
        assert not cache.contains(0x200)

    def test_write_allocate(self):
        cache = self._cache(write_allocate=True)
        cache.write(0x200)
        assert cache.contains(0x200)

    def test_ideal_cache_always_hits(self):
        cache = IdealCache()
        assert cache.read(0x1234).hit
        assert cache.write(0x1234).hit
        assert cache.stats.misses == 0


class TestStackCache:
    def _cache(self, size=128, top=0x1000):
        return StackCache(StackCacheConfig(size_bytes=size), MEM, stack_top=top)

    def test_reserve_within_capacity_is_free(self):
        cache = self._cache()
        result = cache.reserve(16)
        assert result.spilled_words == 0 and result.stall_cycles == 0
        assert cache.occupancy_bytes == 64

    def test_reserve_beyond_capacity_spills(self):
        cache = self._cache(size=128)
        cache.reserve(24)
        result = cache.reserve(16)
        assert result.spilled_words == 8
        assert result.stall_cycles == MEM.transfer_cycles(8)
        assert cache.occupancy_bytes == 128

    def test_free_and_ensure(self):
        cache = self._cache(size=128)
        cache.reserve(24)
        cache.reserve(16)          # spills 8 words of the outer frame
        cache.free(16)
        result = cache.ensure(24)  # outer frame needs 8 words back
        assert result.filled_words == 8
        assert result.stall_cycles == MEM.transfer_cycles(8)

    def test_ensure_when_cached_is_free(self):
        cache = self._cache()
        cache.reserve(10)
        assert cache.ensure(10).filled_words == 0

    def test_free_more_than_reserved_clamps(self):
        cache = self._cache()
        cache.reserve(4)
        cache.free(8)
        assert cache.occupancy_bytes == 0
        assert cache.st == cache.ss

    def test_reserve_larger_than_cache_rejected(self):
        cache = self._cache(size=128)
        with pytest.raises(StackCacheError):
            cache.reserve(64)

    def test_negative_amounts_rejected(self):
        cache = self._cache()
        with pytest.raises(StackCacheError):
            cache.reserve(-1)
        with pytest.raises(StackCacheError):
            cache.ensure(-1)
        with pytest.raises(StackCacheError):
            cache.free(-1)

    def test_contains_window(self):
        cache = self._cache(top=0x1000)
        cache.reserve(4)
        assert cache.contains(0x1000 - 16, 4)
        assert cache.contains(0x1000 - 4, 4)
        assert not cache.contains(0x1000, 4)
        assert not cache.contains(0x1000 - 20, 4)

    @given(st.lists(st.tuples(st.sampled_from(["sres", "sens", "sfree"]),
                              st.integers(min_value=0, max_value=30)),
                    max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_property_occupancy_invariant(self, ops):
        cache = self._cache(size=128)
        for kind, words in ops:
            try:
                if kind == "sres":
                    cache.reserve(words)
                elif kind == "sens":
                    cache.ensure(words)
                else:
                    cache.free(words)
            except StackCacheError:
                continue
            assert cache.st <= cache.ss
            assert 0 <= cache.occupancy_bytes <= cache.size_bytes


class TestCacheHierarchy:
    def test_split_hierarchy_routes_types(self):
        hierarchy = CacheHierarchy(PatmosConfig())
        assert hierarchy.uses_method_cache
        assert hierarchy.data_cache_for(MemType.STATIC) is hierarchy.static_cache
        assert hierarchy.data_cache_for(MemType.OBJECT) is hierarchy.object_cache
        assert hierarchy.data_cache_for(MemType.STACK) is hierarchy.stack_cache
        assert hierarchy.data_cache_for(MemType.MAIN) is None

    def test_stack_reads_are_free_in_split_hierarchy(self):
        hierarchy = CacheHierarchy(PatmosConfig())
        assert hierarchy.data_read(MemType.STACK, 0x1F0000) == 0

    def test_unified_hierarchy_shares_one_cache(self):
        hierarchy = CacheHierarchy(PatmosConfig(),
                                   HierarchyOptions(unified_data_cache=True))
        assert hierarchy.static_cache is hierarchy.object_cache
        # Stack accesses now go through the unified cache and can miss.
        assert hierarchy.data_read(MemType.STACK, 0x1F0000) > 0

    def test_conventional_icache_option(self):
        hierarchy = CacheHierarchy(PatmosConfig(),
                                   HierarchyOptions(conventional_icache=True))
        assert not hierarchy.uses_method_cache
        assert hierarchy.fetch_access(0x10000).stall_cycles > 0
        assert hierarchy.fetch_access(0x10000).stall_cycles == 0  # now cached

    def test_ideal_data_caches_option(self):
        hierarchy = CacheHierarchy(PatmosConfig(),
                                   HierarchyOptions(ideal_data_caches=True))
        assert hierarchy.data_read(MemType.STATIC, 0x40000) == 0
        assert hierarchy.data_read(MemType.OBJECT, 0x100000) == 0

    def test_stats_summary_keys(self):
        hierarchy = CacheHierarchy(PatmosConfig())
        summary = hierarchy.stats_summary()
        assert {"method_cache", "stack_cache", "static_cache",
                "object_cache"} <= set(summary)
