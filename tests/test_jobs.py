"""Tests of the durable job engine (repro.jobs).

Three layers: the journal/run-directory durability model (torn-tail replay,
content-addressed run ids), the supervised execution engine (crash
containment, heartbeat loss, timeout classes, graceful serial fallback),
and crash/recovery end-to-end — a sweep SIGKILLed mid-run must resume from
its journal re-executing only the unfinished cells, with the final report
identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import FailedCell, JobError, SweepInterrupted
from repro.jobs import (
    JobCell,
    Journal,
    RetryPolicy,
    RunDirectory,
    TIMEOUT_CLASSES,
    derive_run_id,
    list_runs,
    replay_journal,
    run_jobs,
)
from repro.jobs.policy import CellTimeout

SRC = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# Module-level worker functions: forked pool workers resolve these by
# name, so they must live at module scope (closures stay serial-only).
# ----------------------------------------------------------------------

def _square(payload):
    return payload * payload


def _die_if_negative(payload):
    if payload < 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return payload * payload


def _raise_if_negative(payload):
    if payload < 0:
        raise ValueError(f"bad payload {payload}")
    return payload * payload


def _sleep_for(payload):
    time.sleep(payload)
    return payload


def _stop_once(payload):
    """SIGSTOP this worker the first time: a wedged (not dead) process."""
    flag, value = payload
    if not os.path.exists(flag):
        open(flag, "w").close()
        os.kill(os.getpid(), signal.SIGSTOP)
    return value * value


def _cells(values):
    return [JobCell(key=f"cell/{v}", label=f"cell {v}", payload=v)
            for v in values]


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.run_header("run-1", "explore", cells=3)
            journal.cell("a", "running", 1, worker=0)
            journal.cell("a", "done", 1, payload={"cycles": 42})
            journal.cell("b", "running", 1, worker=1)
            journal.cell("c", "failed", 2, payload={"error": "X"})
        replay = replay_journal(path)
        assert replay.run_id == "run-1"
        assert replay.kind == "explore"
        assert replay.cells == 3
        assert replay.done == {"a": {"cycles": 42}}
        assert replay.failed == {"c": {"error": "X"}}
        assert not replay.torn_tail
        # b was mid-flight: it must re-execute.
        assert replay.pending(["a", "b", "c"]) == ["b", "c"]

    def test_torn_tail_truncated_mid_byte_requeues_cell(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.run_header("run-1", "explore", cells=2)
            journal.cell("a", "done", 1, payload={"cycles": 1})
            journal.cell("b", "done", 1, payload={"cycles": 2})
        # Tear the final record mid-byte, as a crash during the last
        # write would: cell b falls back to pending and re-executes.
        raw = path.read_bytes()
        lines = raw.rstrip(b"\n").split(b"\n")
        path.write_bytes(b"\n".join(lines[:-1]) + b"\n" + lines[-1][:15])
        replay = replay_journal(path)
        assert replay.torn_tail
        assert replay.done == {"a": {"cycles": 1}}
        assert replay.pending(["a", "b"]) == ["b"]

    def test_interior_corruption_warns_and_skips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.run_header("run-1", "explore", cells=2)
            journal.cell("a", "done", 1, payload={"cycles": 1})
            journal.cell("b", "done", 1, payload={"cycles": 2})
        lines = path.read_bytes().rstrip(b"\n").split(b"\n")
        lines[1] = b"\xff\xfe not json"  # corrupt cell a's record
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.warns(RuntimeWarning, match="undecodable record"):
            replay = replay_journal(path)
        assert not replay.torn_tail
        assert replay.pending(["a", "b"]) == ["a"]

    def test_missing_journal_is_empty_replay(self, tmp_path):
        replay = replay_journal(tmp_path / "absent.jsonl")
        assert replay.records == 0
        assert replay.pending(["a"]) == ["a"]

    def test_sigkill_loses_nothing_flushed(self, tmp_path):
        """Every append is flushed: a killed writer's records all replay."""
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "import os, signal\n"
            "from repro.jobs import Journal\n"
            "journal = Journal(sys.argv[2])\n"
            "journal.run_header('run-k', 'explore', cells=2)\n"
            "journal.cell('a', 'done', 1, payload={'cycles': 7})\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n")
        path = tmp_path / "journal.jsonl"
        proc = subprocess.run([sys.executable, "-c", script,
                               str(SRC), str(path)], timeout=60)
        assert proc.returncode == -signal.SIGKILL
        replay = replay_journal(path)
        assert replay.done == {"a": {"cycles": 7}}


class TestRetryPolicy:
    def test_backoff_deterministic_capped_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(2) == pytest.approx(0.1)
        assert policy.backoff_s(3) == pytest.approx(0.2)
        assert policy.backoff_s(4) == pytest.approx(0.4)
        assert policy.backoff_s(5) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(JobError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(JobError):
            RetryPolicy(heartbeat_timeout_s=0.1, heartbeat_interval_s=0.2)
        with pytest.raises(JobError):
            RetryPolicy(timeout_class="nonsense")

    def test_timeout_classes(self):
        assert RetryPolicy().timeout.max_wall_s is None
        smoke = RetryPolicy(timeout_class="smoke").timeout
        assert smoke.max_wall_s == 60.0
        assert smoke.max_cycles == 20_000_000
        assert set(TIMEOUT_CLASSES) == {"unbounded", "smoke", "standard",
                                        "soak"}


class TestRunDirectory:
    def test_run_id_is_content_addressed(self):
        matrix = {"kernels": ["vector_sum"], "axes": [["cores", [1, 2]]]}
        assert derive_run_id("explore", matrix) == \
            derive_run_id("explore", matrix)
        assert derive_run_id("explore", matrix) != \
            derive_run_id("verify", matrix)
        assert derive_run_id("explore", matrix).startswith("explore-")

    def test_create_open_replay(self, tmp_path):
        matrix = {"kernels": ["vector_sum"]}
        run = RunDirectory.create("explore", matrix, cells=2, root=tmp_path)
        run.journal().cell("a", "done", 1, payload={"cycles": 1})
        run.close()
        reopened = RunDirectory.open(run.run_id, root=tmp_path)
        assert reopened.meta["matrix"] == matrix
        assert reopened.meta["cells"] == 2
        assert reopened.replay().done == {"a": {"cycles": 1}}

    def test_open_unknown_run_raises(self, tmp_path):
        with pytest.raises(JobError, match="unknown run id"):
            RunDirectory.open("explore-000000000000", root=tmp_path)

    def test_fresh_create_truncates_previous_journal(self, tmp_path):
        matrix = {"kernels": ["vector_sum"]}
        first = RunDirectory.create("explore", matrix, cells=1,
                                    root=tmp_path)
        first.journal().cell("a", "done", 1, payload={})
        first.close()
        second = RunDirectory.create("explore", matrix, cells=1,
                                     root=tmp_path)
        second.close()
        assert second.run_id == first.run_id
        assert second.replay().done == {}

    def test_list_runs_newest_first(self, tmp_path):
        one = RunDirectory.create("explore", {"n": 1}, cells=1,
                                  root=tmp_path)
        one.close()
        os.utime(one.path / "meta.json", (1.0, 1.0))
        os.utime(one.journal_path, (1.0, 1.0))
        two = RunDirectory.create("verify", {"n": 2}, cells=1,
                                  root=tmp_path)
        two.close()
        runs = list_runs(tmp_path)
        assert [meta["run_id"] for meta in runs] == [two.run_id, one.run_id]


class TestRunJobsSerial:
    def test_results_and_journal(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        outcome = run_jobs(_cells([1, 2, 3]), _square, journal=journal)
        journal.close()
        assert outcome.results == {"cell/1": 1, "cell/2": 4, "cell/3": 9}
        assert outcome.executed == 3
        assert not outcome.failures and not outcome.interrupted
        replay = replay_journal(tmp_path / "journal.jsonl")
        assert set(replay.done) == {"cell/1", "cell/2", "cell/3"}

    def test_contained_error_becomes_failed_cell(self):
        outcome = run_jobs(_cells([2, -1, 3]), _raise_if_negative,
                           contain=lambda error: True)
        assert set(outcome.results) == {"cell/2", "cell/3"}
        assert len(outcome.failures) == 1
        cell = outcome.failures[0]
        assert isinstance(cell, FailedCell)
        assert cell.error == "ValueError"
        assert cell.key == "cell/-1"

    def test_uncontained_error_propagates(self):
        with pytest.raises(ValueError):
            run_jobs(_cells([2, -1]), _raise_if_negative)

    def test_on_result_sees_completion_order(self):
        seen = []
        run_jobs(_cells([1, 2, 3]), _square,
                 on_result=lambda cell, value: seen.append(value))
        assert seen == [1, 4, 9]


class TestRunJobsParallel:
    def test_parallel_results_match_serial(self):
        values = list(range(8))
        serial = run_jobs(_cells(values), _square, jobs=1)
        parallel = run_jobs(_cells(values), _square, jobs=3)
        assert parallel.results == serial.results

    def test_sigkilled_worker_contained_and_pool_survives(self, tmp_path):
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        journal = Journal(tmp_path / "journal.jsonl")
        outcome = run_jobs(_cells([1, -5, 2, 3]), _die_if_negative,
                           jobs=2, policy=policy, journal=journal)
        journal.close()
        assert outcome.results == {"cell/1": 1, "cell/2": 4, "cell/3": 9}
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.error == "WorkerCrashed"
        assert failure.attempts == 2
        assert outcome.lost_workers >= 2
        replay = replay_journal(tmp_path / "journal.jsonl")
        assert "cell/-5" in replay.failed
        assert set(replay.done) == {"cell/1", "cell/2", "cell/3"}

    def test_wedged_worker_declared_lost_and_cell_stolen(self, tmp_path):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0,
                             heartbeat_interval_s=0.05,
                             heartbeat_timeout_s=0.6)
        flag = str(tmp_path / "stopped-once")
        cells = [JobCell(key="cell/wedge", label="wedge", payload=(flag, 6))]
        outcome = run_jobs(cells, _stop_once, jobs=2, policy=policy)
        assert outcome.results == {"cell/wedge": 36}
        assert outcome.lost_workers == 1

    def test_timeout_class_overrun_is_structured_failure(self, monkeypatch):
        monkeypatch.setitem(TIMEOUT_CLASSES, "test-tiny",
                            CellTimeout("test-tiny", max_wall_s=0.4))
        policy = RetryPolicy(timeout_class="test-tiny",
                             heartbeat_interval_s=0.05,
                             heartbeat_timeout_s=5.0)
        cells = [JobCell(key="cell/slow", label="slow cell", payload=30.0)]
        started = time.monotonic()
        outcome = run_jobs(cells, _sleep_for, jobs=2, policy=policy)
        assert time.monotonic() - started < 10.0
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.error == "SimulationTimeout"
        assert failure.context["kind"] == "wall_clock"
        assert failure.context["max_wall_s"] == 0.4


def _journal_counts(journal_path, state):
    counts = {}
    for line in journal_path.read_bytes().split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("type") == "cell" and record.get("state") == state:
            counts[record["key"]] = counts.get(record["key"], 0) + 1
    return counts


class TestCrashRecovery:
    """End-to-end: SIGKILL a sweep mid-run, resume it from the journal."""

    EXPLORE_ARGS = ["-m", "repro.explore", "--kernels", "vector_sum",
                    "--axis", "method_cache_size="
                    "256,512,1024,2048,4096,8192,16384,32768",
                    "--jobs", "2", "--no-cache", "--no-wcet", "--no-pareto"]

    def _env(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        env["REPRO_RUNS_DIR"] = str(tmp_path / "runs")
        return env

    @staticmethod
    def _table_lines(stdout: str) -> list[str]:
        return [line for line in stdout.splitlines() if "vector_sum" in line]

    def test_sigkill_mid_sweep_resume_matches_uninterrupted(self, tmp_path):
        env = self._env(tmp_path)
        proc = subprocess.Popen([sys.executable, *self.EXPLORE_ARGS],
                                env=env, cwd=tmp_path,
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)
        # Wait until some cells are durably done, then SIGKILL the sweep
        # (no drain, no journal close: the crash case).
        journal_path = None
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if journal_path is None:
                found = list((tmp_path / "runs").glob(
                    "explore-*/journal.jsonl"))
                journal_path = found[0] if found else None
            if journal_path is not None and \
                    len(_journal_counts(journal_path, "done")) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        proc.kill()
        proc.wait(timeout=60)
        assert journal_path is not None, "sweep never created its run dir"
        done_before = _journal_counts(journal_path, "done")
        runs_before = _journal_counts(journal_path, "running")
        assert done_before, "sweep finished before it could be killed"
        run_id = journal_path.parent.name

        resumed = subprocess.run(
            [sys.executable, *self.EXPLORE_ARGS, "--resume", run_id],
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=300)
        assert resumed.returncode == 0, resumed.stderr
        assert f"resuming run {run_id}" in resumed.stdout

        # Done cells were replayed, not re-executed: no new "running"
        # transition for any cell that was already done at the kill.
        runs_after = _journal_counts(journal_path, "running")
        for key in done_before:
            assert runs_after[key] == runs_before[key], \
                f"done cell {key} was re-executed on resume"

        fresh = subprocess.run(
            [sys.executable, *self.EXPLORE_ARGS, "--no-journal"],
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=300)
        assert fresh.returncode == 0, fresh.stderr
        # The resumed report is identical to an uninterrupted sweep
        # (elapsed time aside, which the table does not contain).
        assert self._table_lines(resumed.stdout) == \
            self._table_lines(fresh.stdout)

    def test_verify_resume_replays_done_cells(self, tmp_path):
        from repro.verify import (DEFAULT_ARBITERS, DEFAULT_VARIANTS,
                                  run_conformance)
        from repro.verify.harness import count_cells

        variants = DEFAULT_VARIANTS[:1]
        arbiters = tuple(a for a in DEFAULT_ARBITERS
                         if a.name in ("single", "tdma2"))
        kwargs = dict(kernels=["vector_sum"], variants=variants,
                      arbiters=arbiters, rtos_scenarios=())
        cells = count_cells(["vector_sum"], variants, arbiters, ())

        baseline = run_conformance(**kwargs).to_dict()
        run = RunDirectory.create("verify", {"t": "resume"}, cells=cells,
                                  root=tmp_path)
        first = run_conformance(**kwargs, run_dir=run).to_dict()
        run.close()

        # Tear the journal back mid-run: drop the trailing records so at
        # least one cell loses its terminal state, then resume.
        journal_path = run.journal_path
        lines = journal_path.read_bytes().rstrip(b"\n").split(b"\n")
        done_full = _journal_counts(journal_path, "done")
        journal_path.write_bytes(b"\n".join(lines[:-3]) + b"\n")
        done_cut = _journal_counts(journal_path, "done")
        assert len(done_cut) < len(done_full)

        resumed_dir = RunDirectory.open(run.run_id, root=tmp_path)
        resumed = run_conformance(**kwargs, run_dir=resumed_dir,
                                  resume=True).to_dict()
        resumed_dir.close()
        for report in (baseline, first, resumed):
            report.pop("elapsed_s", None)
            report.get("summary", {}).pop("elapsed_s", None)
        assert first == baseline
        assert resumed == baseline

    def test_interrupt_carries_resume_command(self, tmp_path):
        from repro.explore.runner import ExplorationRunner
        from repro.explore.space import ParameterSpace

        run = RunDirectory.create("explore", {"t": "int"}, cells=1,
                                  root=tmp_path)
        runner = ExplorationRunner(cache=None)
        space = ParameterSpace(["vector_sum"], analyse_wcet=False)

        def interrupt(payload):
            raise KeyboardInterrupt

        import repro.explore.runner as runner_module
        original = runner_module._spec_worker
        runner_module._spec_worker = interrupt
        try:
            with pytest.raises(SweepInterrupted) as excinfo:
                runner.run(space, run_dir=run)
        finally:
            runner_module._spec_worker = original
            run.close()
        assert excinfo.value.run_id == run.run_id
        assert f"--resume {run.run_id}" in excinfo.value.resume_argv
