"""Golden tests for the shared-memory multicore co-simulation.

The headline property is the paper's CMP claim made empirical: under TDMA
arbitration, the fully interleaved co-simulation reports, for *every*
workload kernel, exactly the per-core cycle counts of simulating each core
alone — while under round-robin arbitration the same system's timing
provably depends on what the co-runners do.
"""

import pytest

from repro import PatmosConfig, compile_and_link
from repro.cmp import CmpSystem, MulticoreSystem, default_tdma_schedule
from repro.config import MemoryConfig
from repro.errors import ConfigError
from repro.memory import MainMemory, TdmaSchedule
from repro.sim.cycle import CycleSimulator
from repro.workloads import build_kernel
from repro.workloads.suite import KERNEL_BUILDERS

CONFIG = PatmosConfig()
#: A memory-heavy co-runner whose traffic must not disturb TDMA timing.
CO_RUNNER = "stream_checksum"


def _image(kernel):
    image, _ = compile_and_link(kernel.program, CONFIG)
    return image


@pytest.fixture(scope="module")
def images():
    """One compiled image per kernel (module-cached: compilation dominates)."""
    return {name: _image(build_kernel(name)) for name in KERNEL_BUILDERS}


@pytest.fixture(scope="module")
def expected_outputs():
    return {name: build_kernel(name).expected_output
            for name in KERNEL_BUILDERS}


class TestTdmaDecoupling:
    @pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
    def test_cosim_equals_independent_simulation(self, kernel, images,
                                                 expected_outputs):
        """The golden decoupling property, for every workload kernel."""
        pair = [images[kernel], images[CO_RUNNER]]
        analytic = MulticoreSystem(pair, CONFIG, mode="analytic").run(
            analyse=False, strict=True)
        cosim = MulticoreSystem(pair, CONFIG, mode="cosim").run(
            analyse=False, strict=True)
        assert cosim.observed_by_core() == analytic.observed_by_core()
        # Functional behaviour survives the shared-memory banks.
        assert cosim.cores[0].sim.output == expected_outputs[kernel]
        assert cosim.cores[1].sim.output == expected_outputs[CO_RUNNER]

    def test_four_core_mix(self, images, expected_outputs):
        mix = ["vector_sum", "checksum", "fir_filter", "saturate"]
        quad = [images[name] for name in mix]
        analytic = MulticoreSystem(quad, CONFIG, mode="analytic").run(
            analyse=True, strict=True)
        cosim = MulticoreSystem(quad, CONFIG, mode="cosim").run(
            analyse=True, strict=True)
        assert cosim.observed_by_core() == analytic.observed_by_core()
        assert cosim.wcet_by_core() == analytic.wcet_by_core()
        for core, name in zip(cosim.cores, mix):
            assert core.sim.output == expected_outputs[name]
            assert core.wcet_cycles >= core.observed_cycles

    def test_weighted_slots_keep_decoupling(self, images):
        pair = [images["vector_sum"], images[CO_RUNNER]]
        schedule = TdmaSchedule(num_cores=2,
                                slot_cycles=CONFIG.memory.burst_cycles(),
                                slot_weights=(1, 2))
        analytic = MulticoreSystem(pair, CONFIG, schedule=schedule,
                                   mode="analytic").run(analyse=False)
        cosim = MulticoreSystem(pair, CONFIG, schedule=schedule,
                                mode="cosim").run(analyse=False)
        assert cosim.observed_by_core() == analytic.observed_by_core()


class TestRoundRobinInterference:
    def test_timing_depends_on_co_runner(self, images):
        """The counterexample: round-robin timing varies with co-runner
        traffic, which is exactly what defeats per-core WCET analysis."""
        heavy = MulticoreSystem(
            [images["vector_sum"], images[CO_RUNNER]], CONFIG,
            arbiter="round_robin").run(analyse=False, strict=True)
        light = MulticoreSystem(
            [images["vector_sum"], images["saturate"]], CONFIG,
            arbiter="round_robin").run(analyse=False, strict=True)
        assert (heavy.observed_by_core()[0]
                != light.observed_by_core()[0])

    def test_wcet_bound_covers_observed(self, images):
        result = MulticoreSystem(
            [images["vector_sum"], images[CO_RUNNER]], CONFIG,
            arbiter="round_robin").run(analyse=True, strict=True)
        for core in result.cores:
            assert core.wcet_cycles is not None
            assert core.wcet_cycles >= core.observed_cycles


class TestPriorityArbitration:
    def test_only_top_core_gets_a_bound(self, images):
        result = MulticoreSystem(
            [images["vector_sum"], images[CO_RUNNER]], CONFIG,
            arbiter="priority").run(analyse=True, strict=True)
        assert result.cores[0].wcet_cycles is not None
        assert result.cores[0].wcet_cycles >= result.cores[0].observed_cycles
        assert result.cores[1].wcet_cycles is None

    def test_top_core_bound_sound_under_queueing(self, images):
        """With three memory-heavy co-runners the lower-priority queue is
        long, but the top core's bound must still cover its observed time
        (it jumps the queue, waiting one in-flight transfer at most)."""
        result = MulticoreSystem(
            [images["vector_sum"]] + [images[CO_RUNNER]] * 3, CONFIG,
            arbiter="priority").run(analyse=True, strict=True)
        top = result.cores[0]
        assert top.wcet_cycles is not None
        assert top.wcet_cycles >= top.observed_cycles


class TestSystemConstruction:
    def test_under_provisioned_slot_rejected(self, images):
        burst = CONFIG.memory.burst_cycles()
        schedule = TdmaSchedule(num_cores=2, slot_cycles=burst - 1)
        with pytest.raises(ConfigError, match="shorter than one burst"):
            MulticoreSystem([images["vector_sum"]] * 2, CONFIG,
                            schedule=schedule)
        with pytest.raises(ConfigError, match="shorter than one burst"):
            CmpSystem.homogeneous(images["vector_sum"], 2, CONFIG,
                                  slot_cycles=burst - 1)

    def test_under_provisioned_weighted_slot_rejected(self, images):
        burst = CONFIG.memory.burst_cycles()
        # Weight 1 on a half-burst base slot under-provisions core 0 only.
        schedule = TdmaSchedule(num_cores=2, slot_cycles=burst // 2,
                                slot_weights=(1, 2))
        with pytest.raises(ConfigError, match="core 0"):
            MulticoreSystem([images["vector_sum"]] * 2, CONFIG,
                            schedule=schedule)

    def test_undersized_arbiter_instance_rejected(self, images):
        from repro.memory import RoundRobinArbiter
        with pytest.raises(ConfigError, match="serves 2 cores"):
            MulticoreSystem([images["vector_sum"]] * 4, CONFIG,
                            arbiter=RoundRobinArbiter(2))

    def test_ignored_argument_combinations_rejected(self, images):
        pair = [images["vector_sum"]] * 2
        with pytest.raises(ConfigError, match="TDMA schedule makes no"):
            MulticoreSystem(pair, CONFIG, arbiter="round_robin",
                            slot_weights=(1, 3))
        with pytest.raises(ConfigError, match="priorities make no sense"):
            MulticoreSystem(pair, CONFIG, arbiter="tdma", priorities=[1, 0])
        with pytest.raises(ConfigError, match="not both"):
            MulticoreSystem(pair, CONFIG,
                            schedule=default_tdma_schedule(2, CONFIG),
                            slot_weights=(1, 2))
        with pytest.raises(ConfigError, match="not both"):
            MulticoreSystem.homogeneous(
                pair[0], 2, CONFIG, slot_cycles=28,
                schedule=default_tdma_schedule(2, CONFIG))
        from repro.memory import RoundRobinArbiter
        with pytest.raises(ConfigError, match="configure the arbiter"):
            MulticoreSystem(pair, CONFIG, arbiter=RoundRobinArbiter(2),
                            priorities=[0, 1])

    def test_analytic_mode_requires_tdma(self, images):
        with pytest.raises(ConfigError, match="analytic"):
            MulticoreSystem([images["vector_sum"]] * 2, CONFIG,
                            arbiter="round_robin", mode="analytic")

    def test_mismatched_memory_config_rejected(self, images):
        other = PatmosConfig(memory=MemoryConfig(burst_words=8))
        with pytest.raises(ConfigError, match="MemoryConfig"):
            MulticoreSystem([images["vector_sum"]] * 2,
                            configs=[CONFIG, other])

    def test_heterogeneous_cache_configs_allowed(self, images):
        small = PatmosConfig(
            method_cache=CONFIG.method_cache.__class__(size_bytes=1024,
                                                       num_blocks=4))
        result = MulticoreSystem(
            [images["vector_sum"], images["checksum"]],
            configs=[CONFIG, small]).run(analyse=False, strict=True)
        assert len(result.cores) == 2

    def test_cmp_system_defaults_to_analytic(self, images):
        system = CmpSystem([images["vector_sum"]] * 2, CONFIG)
        assert system.mode == "analytic"
        result = system.run(analyse=False)
        assert result.mode == "analytic"
        assert result.arbiter == "tdma"


class TestSteppingApi:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_chunked_stepping_equals_one_shot_run(self, images, engine):
        """run_step in small cycle quanta must reproduce run() exactly."""
        image = images["vector_sum"]
        reference = CycleSimulator(image, config=CONFIG, strict=True,
                                   engine=engine).run()
        sim = CycleSimulator(image, config=CONFIG, strict=True, engine=engine)
        steps = 0
        while True:
            reason = sim.run_step(until_cycle=sim.cycles + 7)
            steps += 1
            assert steps < 10_000
            if reason == "halted":
                break
        chunked = sim.result()
        assert chunked.cycles == reference.cycles
        assert chunked.output == reference.output
        assert chunked.block_counts == reference.block_counts
        assert chunked.stalls.to_dict() == reference.stalls.to_dict()

    def test_memory_event_stepping(self, images):
        """With an arbiter attached, stepping yields on arbitrated
        transfers and the cycle horizon is respected otherwise."""
        image = images[CO_RUNNER]
        schedule = default_tdma_schedule(2, CONFIG)
        from repro.memory.arbiter import TdmaBusArbiter
        arbiter = TdmaBusArbiter(schedule)
        sim = CycleSimulator(image, config=CONFIG, arbiter=arbiter.port(0),
                             core_id=0)
        events = 0
        while True:
            before = sim.cycles
            reason = sim.run_step(until_cycle=sim.cycles + 50,
                                  stop_on_memory_event=True)
            if reason == "halted":
                break
            if reason == "memory_event":
                events += 1
            else:
                assert reason == "cycle_limit"
                assert sim.cycles >= before + 50
        assert events > 0
        # The stepped run still matches an uninterrupted one.
        alone = CycleSimulator(image, config=CONFIG,
                               arbiter=TdmaBusArbiter(schedule).port(0),
                               core_id=0).run()
        assert sim.result().cycles == alone.cycles


class TestSharedMemoryBanks:
    def test_views_alias_backing_storage(self):
        shared = MainMemory(1024)
        bank0 = MainMemory.view(shared, 0, 512)
        bank1 = MainMemory.view(shared, 512, 512)
        bank0.write_word(16, 0xAAAA)
        bank1.write_word(16, 0xBBBB)
        assert shared.read_word(16) == 0xAAAA
        assert shared.read_word(512 + 16) == 0xBBBB
        assert bank0.read_word(16) == 0xAAAA  # banks stay disjoint

    def test_bank_bounds_enforced(self):
        shared = MainMemory(1024)
        bank = MainMemory.view(shared, 512, 512)
        from repro.errors import MemoryAccessError
        with pytest.raises(MemoryAccessError):
            bank.read_word(512)
        with pytest.raises(MemoryAccessError):
            MainMemory.view(shared, 768, 512)
        with pytest.raises(MemoryAccessError, match="positive"):
            MainMemory.view(shared, 512, -4)
        with pytest.raises(MemoryAccessError, match="whole words"):
            MainMemory.view(shared, 0, 10)

    def test_system_stats_aggregate(self, images):
        result = MulticoreSystem(
            [images["vector_sum"], images[CO_RUNNER]], CONFIG,
            arbiter="round_robin").run(analyse=False)
        stats = result.system_stats()
        assert stats["arbiter"] == "round_robin"
        assert stats["makespan"] == result.makespan
        assert len(stats["per_core"]) == 2
        total = sum(row["arbitration_cycles"] for row in stats["per_core"])
        assert stats["totals"]["arbitration_cycles"] == total
        assert stats["arbiter_stats"]["kind"] == "round_robin"
