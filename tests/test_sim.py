"""Tests of the functional and cycle-accurate simulators.

The helper builds small programs through the builder + compiler so that the
architectural behaviour (predication, exposed delays, calls/returns, typed
memory, split loads, stack control) is tested end to end.
"""

import pytest

from repro import (
    CompileOptions,
    CycleSimulator,
    FunctionalSimulator,
    PatmosConfig,
    ProgramBuilder,
    compile_and_link,
)
from repro.errors import ScheduleViolation, SimulationError
from repro.isa import Bundle, Instruction, Opcode
from repro.program import DataSpace, link
from repro.program.basic_block import BasicBlock
from repro.program.function import Function
from repro.program.program import Program
from repro.sim.state import to_signed


def run_program(build, config=None, simulator=CycleSimulator, strict=True,
                options=CompileOptions()):
    """Build a program with ``build(builder, function)`` and run it."""
    config = config or PatmosConfig()
    b = ProgramBuilder("t")
    f = b.function("main")
    build(b, f)
    image, _ = compile_and_link(b.build(), config, options)
    sim = simulator(image, config=config, strict=strict)
    return sim.run(), sim


class TestArithmetic:
    def test_basic_alu(self):
        def build(b, f):
            f.li("r1", 21)
            f.emit("add", "r2", "r1", "r1")
            f.emit("subi", "r3", "r2", 2)
            f.emit("shli", "r4", "r1", 2)
            f.out("r2")
            f.out("r3")
            f.out("r4")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [42, 40, 84]

    def test_negative_values_and_sra(self):
        def build(b, f):
            f.li("r1", -64)
            f.emit("srai", "r2", "r1", 3)
            f.emit("shri", "r3", "r1", 28)
            f.out("r2")
            f.out("r3")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [-8, 0xF]

    def test_wraparound_add(self):
        def build(b, f):
            f.li("r1", 0x7FFFFFFF)
            f.emit("addi", "r2", "r1", 1)
            f.out("r2")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [to_signed(0x80000000)]

    def test_lil_lih_builds_32bit_constant(self):
        def build(b, f):
            f.emit("lil", "r1", 0x5678)
            f.emit("lih", "r1", 0x1234)
            f.out("r1")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [0x12345678]

    def test_mul_and_special_registers(self):
        def build(b, f):
            f.li("r1", 100000)
            f.li("r2", 70000)
            f.emit("mul", "r1", "r2")
            f.emit("mfs", "r3", "sl")
            f.emit("mfs", "r4", "sh")
            f.out("r3")
            f.out("r4")
            f.halt()
        result, _ = run_program(build)
        product = 100000 * 70000
        assert result.output == [to_signed(product & 0xFFFFFFFF), product >> 32]

    def test_r0_reads_zero_and_ignores_writes(self):
        def build(b, f):
            f.emit("addi", "r0", "r0", 99)
            f.emit("add", "r1", "r0", "r0")
            f.out("r1")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [0]


class TestPredication:
    def test_guarded_instructions(self):
        def build(b, f):
            f.li("r1", 5)
            f.li("r2", 9)
            f.emit("cmplt", "p1", "r1", "r2")
            f.emit("addi", "r3", "r0", 111, pred="p1")
            f.emit("addi", "r4", "r0", 222, pred="!p1")
            f.out("r3")
            f.out("r4")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [111, 0]

    def test_predicate_combines(self):
        def build(b, f):
            f.emit("cmpieq", "p1", "r0", 0)   # true
            f.emit("cmpineq", "p2", "r0", 0)  # false
            f.emit("pand", "p3", "p1", "p2")
            f.emit("por", "p4", "p1", "p2")
            f.emit("pxor", "p5", "p1", "p2")
            f.emit("pnot", "p6", "p2")
            for pred, reg in (("p3", "r3"), ("p4", "r4"), ("p5", "r5"), ("p6", "r6")):
                f.emit("addi", reg, "r0", 1, pred=pred)
            for reg in ("r3", "r4", "r5", "r6"):
                f.out(reg)
            f.halt()
        result, _ = run_program(build)
        assert result.output == [0, 1, 1, 1]

    def test_p0_always_true_and_unwritable(self):
        def build(b, f):
            f.emit("cmpineq", "p0", "r0", 0)  # would set p0 false; must be ignored
            f.emit("addi", "r1", "r0", 7, pred="p0")
            f.out("r1")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [7]

    def test_btest(self):
        def build(b, f):
            f.li("r1", 0b1010)
            f.li("r2", 3)
            f.emit("btest", "p1", "r1", "r2")
            f.emit("addi", "r3", "r0", 1, pred="p1")
            f.out("r3")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [1]


class TestControlFlow:
    def test_loop_and_branch(self):
        def build(b, f):
            f.li("r1", 5)
            f.li("r2", 0)
            f.label("loop")
            f.emit("add", "r2", "r2", "r1")
            f.emit("subi", "r1", "r1", 1)
            f.emit("cmpineq", "p1", "r1", 0)
            f.br("loop", pred="p1")
            f.loop_bound("loop", 5)
            f.out("r2")
            f.halt()
        result, _ = run_program(build)
        assert result.output == [15]

    def test_call_and_return(self):
        b = ProgramBuilder("t")
        f = b.function("main")
        f.li("r1", 10)
        f.call("double")
        f.out("r2")
        f.halt()
        g = b.function("double")
        g.emit("add", "r2", "r1", "r1")
        g.ret()
        image, _ = compile_and_link(b.build())
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [20]
        assert result.call_counts == {"double": 1}

    def test_nested_calls_restore_return_info(self):
        b = ProgramBuilder("t")
        f = b.function("main")
        f.li("r1", 1)
        f.call("outer")
        f.out("r1")
        f.halt()
        outer = b.function("outer")
        outer.emit("addi", "r1", "r1", 10)
        outer.call("inner")
        outer.emit("addi", "r1", "r1", 100)
        outer.ret()
        inner = b.function("inner")
        inner.emit("addi", "r1", "r1", 1000)
        inner.ret()
        image, _ = compile_and_link(b.build())
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [1111]

    def test_block_counts_track_loop_iterations(self):
        def build(b, f):
            f.li("r1", 7)
            f.label("loop")
            f.emit("subi", "r1", "r1", 1)
            f.emit("cmpineq", "p1", "r1", 0)
            f.br("loop", pred="p1")
            f.loop_bound("loop", 7)
            f.halt()
        result, _ = run_program(build)
        assert result.block_counts[("main", "loop")] == 7

    def test_non_halting_program_detected(self):
        def build(b, f):
            f.label("loop")
            f.br("loop")
        b = ProgramBuilder("t")
        f = b.function("main")
        build(b, f)
        image, _ = compile_and_link(b.build())
        with pytest.raises(SimulationError):
            CycleSimulator(image).run(max_bundles=1000)


class TestExposedDelays:
    def _image_with_raw_blocks(self, bundles):
        """Build an image from hand-scheduled bundles (bypassing the scheduler)."""
        block = BasicBlock(label="entry", instrs=[i for b in bundles for i in b],
                           bundles=[Bundle(*b) for b in bundles])
        function = Function(name="main", blocks=[block])
        program = Program(name="raw", functions={"main": function}, entry="main")
        return link(program, PatmosConfig())

    def test_load_delay_slot_returns_old_value_when_violated(self):
        # lwc r1 = [r0+0]; add r2 = r1, r0 in the very next bundle: the add
        # still sees the old r1 (exposed delay), per Section 3 of the paper.
        bundles = [
            [Instruction(Opcode.LIL, rd=1, imm=999)],
            [Instruction(Opcode.LWC, rd=1, rs1=0, imm=0)],
            [Instruction(Opcode.ADD, rd=2, rs1=1, rs2=0)],
            [Instruction(Opcode.NOP)],
            [Instruction(Opcode.ADD, rd=3, rs1=1, rs2=0)],
            [Instruction(Opcode.OUT, rs1=2)],
            [Instruction(Opcode.OUT, rs1=3)],
            [Instruction(Opcode.HALT)],
        ]
        image = self._image_with_raw_blocks(bundles)
        result = FunctionalSimulator(image, strict=False).run()
        assert result.output[0] == 999   # stale value
        assert result.output[1] == 0     # value from memory (zero)

    def test_strict_mode_raises_on_premature_use(self):
        bundles = [
            [Instruction(Opcode.LWC, rd=1, rs1=0, imm=0)],
            [Instruction(Opcode.ADD, rd=2, rs1=1, rs2=0)],
            [Instruction(Opcode.HALT)],
        ]
        image = self._image_with_raw_blocks(bundles)
        with pytest.raises(ScheduleViolation):
            FunctionalSimulator(image, strict=True).run()

    def test_branch_delay_slots_execute(self):
        # The two bundles after a taken branch execute (branch delay slots).
        bundles = [
            [Instruction(Opcode.LIL, rd=1, imm=0)],
            [Instruction(Opcode.BR, target="skip")],
            [Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1)],   # delay slot 1
            [Instruction(Opcode.ADDI, rd=1, rs1=1, imm=2)],   # delay slot 2
            [Instruction(Opcode.ADDI, rd=1, rs1=1, imm=100)],  # skipped
        ]
        block = BasicBlock(label="entry",
                           instrs=[i for b in bundles for i in b],
                           bundles=[Bundle(*b) for b in bundles])
        tail = BasicBlock(label="skip",
                          instrs=[Instruction(Opcode.OUT, rs1=1),
                                  Instruction(Opcode.HALT)],
                          bundles=[Bundle(Instruction(Opcode.OUT, rs1=1)),
                                   Bundle(Instruction(Opcode.HALT))])
        function = Function(name="main", blocks=[block, tail])
        program = Program(name="raw", functions={"main": function}, entry="main")
        image = link(program, PatmosConfig())
        result = FunctionalSimulator(image).run()
        assert result.output == [3]

    def test_scheduled_code_never_violates_delays(self):
        # The compiler's output must satisfy strict mode by construction.
        def build(b, f):
            f.li("r1", 3)
            f.emit("mul", "r1", "r1")
            f.emit("mfs", "r2", "sl")
            f.emit("add", "r3", "r2", "r2")
            f.out("r3")
            f.halt()
        result, _ = run_program(build, strict=True)
        assert result.output == [18]


class TestTypedMemory:
    def test_scratchpad_and_static_data(self):
        b = ProgramBuilder("t")
        b.data("table", [5, 6, 7], space=DataSpace.CONST)
        b.zeros("local", 4, space=DataSpace.LOCAL)
        f = b.function("main")
        f.li("r1", "table")
        f.li("r2", "local")
        f.emit("lwc", "r3", "r1", 4)
        f.emit("swl", "r2", 0, "r3")
        f.emit("lwl", "r4", "r2", 0)
        f.out("r4")
        f.halt()
        image, _ = compile_and_link(b.build())
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [6]

    def test_byte_and_half_access(self):
        b = ProgramBuilder("t")
        b.data("word", [0x80FF7F01], space=DataSpace.DATA)
        f = b.function("main")
        f.li("r1", "word")
        f.emit("lbc", "r2", "r1", 0)    # 0x01 signed
        f.emit("lbc", "r3", "r1", 3)    # 0x80 signed -> -128
        f.emit("lbuc", "r4", "r1", 3)   # 0x80 unsigned -> 128
        f.emit("lhc", "r5", "r1", 2)    # 0x80FF -> negative
        f.emit("lhuc", "r6", "r1", 2)
        for reg in ("r2", "r3", "r4", "r5", "r6"):
            f.out(reg)
        f.halt()
        image, _ = compile_and_link(b.build())
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [1, -128, 128, to_signed(0xFFFF80FF), 0x80FF]

    def test_heap_access_through_object_cache(self):
        b = ProgramBuilder("t")
        b.data("object", [11, 22], space=DataSpace.HEAP)
        f = b.function("main")
        f.li("r1", "object")
        f.emit("lwo", "r2", "r1", 4)
        f.emit("swo", "r1", 0, "r2")
        f.emit("lwo", "r3", "r1", 0)
        f.out("r3")
        f.halt()
        image, _ = compile_and_link(b.build())
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [22]

    def test_split_load_requires_wmem_for_value(self):
        b = ProgramBuilder("t")
        b.data("stream", [77], space=DataSpace.HEAP)
        f = b.function("main")
        f.li("r1", "stream")
        f.emit("lwm", "r2", "r1", 0)
        f.emit("wmem")
        f.out("r2")
        f.halt()
        image, _ = compile_and_link(b.build())
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [77]
        assert result.stalls.split_load_wait >= 0

    def test_main_memory_store(self):
        b = ProgramBuilder("t")
        b.zeros("buffer", 2, space=DataSpace.HEAP)
        f = b.function("main")
        f.li("r1", "buffer")
        f.li("r2", 1234)
        f.emit("swm", "r1", 4, "r2")
        f.emit("lwm", "r3", "r1", 4)
        f.emit("wmem")
        f.out("r3")
        f.halt()
        image, _ = compile_and_link(b.build())
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [1234]


class TestCycleAccounting:
    def test_functional_cycles_equal_bundles(self):
        def build(b, f):
            f.li("r1", 4)
            f.emit("add", "r2", "r1", "r1")
            f.out("r2")
            f.halt()
        result, _ = run_program(build, simulator=FunctionalSimulator)
        assert result.cycles == result.bundles

    def test_cycle_sim_charges_method_cache_for_entry(self):
        def build(b, f):
            f.halt()
        result, _ = run_program(build)
        assert result.stalls.method_cache > 0
        assert result.cycles == result.bundles + result.stalls.total()

    def test_static_cache_miss_then_hit(self):
        b = ProgramBuilder("t")
        b.data("table", [1, 2, 3, 4], space=DataSpace.CONST)
        f = b.function("main")
        f.li("r1", "table")
        f.emit("lwc", "r2", "r1", 0)
        f.emit("lwc", "r3", "r1", 4)   # same line: hit
        f.out("r2")
        f.out("r3")
        f.halt()
        image, _ = compile_and_link(b.build())
        sim = CycleSimulator(image, strict=True)
        result = sim.run()
        stats = result.cache_stats["static_cache"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_dual_issue_reduces_cycles(self):
        def program():
            b = ProgramBuilder("t")
            f = b.function("main")
            f.li("r1", 1)
            f.li("r2", 2)
            f.li("r3", 3)
            f.li("r4", 4)
            for _ in range(6):
                f.emit("add", "r5", "r1", "r2")
                f.emit("add", "r6", "r3", "r4")
            f.out("r5")
            f.halt()
            return b.build()

        config = PatmosConfig()
        dual_image, _ = compile_and_link(program(), config,
                                         CompileOptions(dual_issue=True))
        single_image, _ = compile_and_link(program(), config,
                                           CompileOptions(dual_issue=False))
        dual = CycleSimulator(dual_image, config=config, strict=True).run()
        single = CycleSimulator(single_image, config=config, strict=True).run()
        assert dual.output == single.output == [3]
        assert dual.bundles < single.bundles

    def test_slot_utilisation_reported(self):
        def build(b, f):
            f.li("r1", 1)
            f.li("r2", 2)
            f.emit("add", "r3", "r1", "r1")
            f.emit("add", "r4", "r2", "r2")
            f.out("r3")
            f.halt()
        result, _ = run_program(build)
        assert 0.0 < result.slot_utilisation <= 1.0
        assert result.ipc >= result.useful_ipc
        assert result.issue_width == 2
        assert result.metrics()["issue_width"] == 2

    def test_slot_utilisation_respects_issue_width(self):
        """A single-issue run must not be capped at 0.5 by construction:
        one fully used slot per bundle is a utilisation of 1.0."""
        def program():
            b = ProgramBuilder("iw")
            f = b.function("main")
            f.li("r1", 1)
            f.emit("add", "r2", "r1", "r1")
            f.out("r2")
            f.halt()
            return b.build()
        config = PatmosConfig().single_issue()
        image, _ = compile_and_link(program(), config,
                                    CompileOptions(dual_issue=False))
        result = CycleSimulator(image, config=config, strict=True).run()
        assert result.issue_width == 1
        assert result.slot_utilisation > 0.5
        # Same instruction mix under the dual-issue default reports a lower
        # utilisation only because it has twice the slots, never because the
        # divisor ignores the configuration.
        useful = result.instructions - result.nops
        assert result.slot_utilisation == useful / result.bundles
        assert (result.metrics()["slot_utilisation"]
                == pytest.approx(result.slot_utilisation))

    def test_trace_collection(self):
        def build(b, f):
            f.li("r1", 1)
            f.halt()
        b = ProgramBuilder("t")
        f = b.function("main")
        build(b, f)
        image, _ = compile_and_link(b.build())
        sim = CycleSimulator(image, trace=True)
        result = sim.run()
        assert result.trace is not None
        assert result.trace[0].addr == image.entry_addr
