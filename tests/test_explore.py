"""Tests for the design-space exploration subsystem (repro.explore)."""

import json

import pytest

from repro.config import PatmosConfig
from repro.errors import ExplorationError
from repro.explore import (
    ExperimentSpec,
    ExplorationRunner,
    Objective,
    ParameterSpace,
    ResultCache,
    SpecResult,
    execute_spec,
    pareto_frontier,
    pareto_table,
    resolve_axis,
)
from repro.explore import runner as runner_module
from repro.explore.cli import coerce_value, main, parse_axis


class TestAxisResolution:
    def test_alias(self):
        assert resolve_axis("method_cache_size") == (
            "config", "method_cache.size_bytes")

    def test_dotted_path(self):
        assert resolve_axis("stack_cache.size_bytes") == (
            "config", "stack_cache.size_bytes")

    def test_compile_option(self):
        assert resolve_axis("single_path") == ("compile", "single_path")

    def test_cores_and_slot(self):
        assert resolve_axis("cores") == ("cores", None)
        assert resolve_axis("slot_cycles") == ("slot_cycles", None)

    def test_multicore_axes(self):
        assert resolve_axis("arbiter") == ("arbiter", None)
        assert resolve_axis("slot_weights") == ("slot_weights", None)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ExplorationError, match="unknown axis"):
            resolve_axis("bogus_axis")


class TestParameterSpace:
    def test_expansion_count_and_order(self):
        space = (ParameterSpace(["vector_sum", "fir_filter"])
                 .axis("method_cache_size", [1024, 2048])
                 .axis("single_path", [False, True]))
        specs = space.specs()
        assert len(specs) == len(space) == 8
        # Kernel-major, then axis-declaration order.
        assert [spec.kernel for spec in specs[:4]] == ["vector_sum"] * 4
        assert specs[0].parameters == (("method_cache_size", 1024),
                                       ("single_path", False))
        assert specs[1].parameters == (("method_cache_size", 1024),
                                       ("single_path", True))

    def test_axes_are_applied(self):
        space = (ParameterSpace(["vector_sum"])
                 .axis("method_cache_size", [2048])
                 .axis("single_path", [True])
                 .axis("cores", [2])
                 .axis("slot_cycles", [28]))
        (spec,) = space.specs()
        assert spec.config.method_cache.size_bytes == 2048
        assert spec.options.single_path
        assert spec.cores == 2
        assert spec.slot_cycles == 28

    def test_suite_names_expand(self):
        space = ParameterSpace(["branchy"])
        assert space.kernels == ("saturate", "linear_search", "bubble_sort")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            ParameterSpace(["not_a_kernel"])

    def test_duplicate_axis_rejected(self):
        space = ParameterSpace(["vector_sum"]).axis("cores", [1, 2])
        with pytest.raises(ExplorationError, match="duplicate"):
            space.axis("cores", [4])

    def test_empty_axis_rejected(self):
        with pytest.raises(ExplorationError, match="no values"):
            ParameterSpace(["vector_sum"]).axis("cores", [])

    def test_invalid_override_value_rejected_at_expansion(self):
        from repro.errors import ConfigError
        space = (ParameterSpace(["vector_sum"])
                 .axis("method_cache_size", [1000]))  # not a block multiple
        with pytest.raises(ConfigError):
            space.specs()


class TestSpecKey:
    def test_key_is_stable(self):
        def make():
            return (ParameterSpace(["vector_sum"])
                    .axis("method_cache_size", [2048])).specs()[0]
        assert make().key() == make().key()

    def test_key_distinguishes_content(self):
        specs = (ParameterSpace(["vector_sum"])
                 .axis("method_cache_size", [1024, 2048])).specs()
        assert specs[0].key() != specs[1].key()

    def test_key_ignores_display_parameters(self):
        config = PatmosConfig()
        a = ExperimentSpec(kernel="vector_sum", config=config,
                           parameters=(("label", 1),))
        b = ExperimentSpec(kernel="vector_sum", config=config,
                           parameters=(("other", 2),))
        assert a.key() == b.key()

    def test_key_covers_wcet_options(self):
        config = PatmosConfig()
        a = ExperimentSpec(kernel="vector_sum", config=config)
        b = ExperimentSpec(kernel="vector_sum", config=config,
                           wcet_overrides=(("method_cache", "always_miss"),))
        assert a.key() != b.key()

    def test_key_covers_engine(self):
        """Engines are required to agree, but results from different
        engines must still never alias in a shared cache."""
        config = PatmosConfig()
        keys = {ExperimentSpec(kernel="vector_sum", config=config,
                               engine=engine).key()
                for engine in ("reference", "fast", "jit")}
        assert len(keys) == 3

    def test_engine_axis_sweeps_identical_figures(self, tmp_path,
                                                  monkeypatch):
        """An engine axis expands, and both engines report the same
        cycles/bundles for the same design point."""
        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path / "jit"))
        space = (ParameterSpace(["vector_sum"])
                 .axis("engine", ["fast", "jit"]))
        outcome = ExplorationRunner().run(space)
        assert len(outcome) == 2
        fast, jit = outcome.results
        assert {fast.parameters["engine"], jit.parameters["engine"]} \
            == {"fast", "jit"}
        assert fast.cycles == jit.cycles
        assert fast.stalls == jit.stalls

    def test_unknown_engine_rejected(self):
        from repro.errors import ExplorationError
        with pytest.raises(ExplorationError):
            (ParameterSpace(["vector_sum"])
             .axis("engine", ["turbo"])).specs()


class TestRunner:
    def test_serial_run_is_sound(self):
        space = (ParameterSpace(["vector_sum"])
                 .axis("method_cache_size", [1024, 4096]))
        outcome = ExplorationRunner().run(space)
        assert len(outcome) == 2
        for result in outcome.results:
            assert result.cycles > 0
            assert result.wcet_cycles >= result.cycles
            assert result.fmax_mhz > 0
            assert not result.from_cache
        assert outcome.cache_hits == 0
        assert outcome.cache_misses == 2

    def test_parallel_results_identical_to_serial(self):
        def sweep(jobs):
            space = (ParameterSpace(["vector_sum", "saturate"])
                     .axis("method_cache_size", [1024, 2048])
                     .axis("single_path", [False, True]))
            return ExplorationRunner(jobs=jobs).run(space)

        serial = sweep(1)
        parallel = sweep(4)
        assert (json.dumps(serial.to_records(), sort_keys=True)
                == json.dumps(parallel.to_records(), sort_keys=True))

    def test_cmp_spec_uses_makespan(self):
        single = (ParameterSpace(["vector_sum"])).specs()[0]
        cmp_spec = (ParameterSpace(["vector_sum"])
                    .axis("cores", [4])).specs()[0]
        alone = execute_spec(single)
        shared = execute_spec(cmp_spec)
        assert shared.cores == 4
        # Sharing memory via TDMA can only slow a core down.
        assert shared.cycles >= alone.cycles
        assert shared.wcet_cycles >= alone.wcet_cycles

    def test_single_core_points_dedupe_and_keep_labels(self):
        # Arbitration axes cannot affect one core: the specs share a key,
        # the sweep runs the point once, and each row keeps its own label.
        space = (ParameterSpace(["vector_sum"], analyse_wcet=False)
                 .axis("cores", [1])
                 .axis("arbiter", ["tdma", "round_robin"]))
        specs = space.specs()
        assert specs[0].key() == specs[1].key()
        outcome = ExplorationRunner().run(space)
        assert outcome.cache_misses == 1  # executed once, shared twice
        assert [r.parameters["arbiter"] for r in outcome.results] == [
            "tdma", "round_robin"]
        assert outcome.results[0].cycles == outcome.results[1].cycles

    def test_non_tdma_points_ignore_slot_geometry_in_key(self):
        specs = (ParameterSpace(["vector_sum"])
                 .axis("cores", [2])
                 .axis("arbiter", ["round_robin"])
                 .axis("slot_cycles", [14, 28])).specs()
        assert specs[0].key() == specs[1].key()

    def test_arbiter_axis_runs_cosim(self):
        specs = (ParameterSpace(["vector_sum"])
                 .axis("cores", [2])
                 .axis("arbiter", ["tdma", "round_robin"])).specs()
        assert [spec.arbiter for spec in specs] == ["tdma", "round_robin"]
        assert specs[0].key() != specs[1].key()
        tdma, rr = (execute_spec(spec) for spec in specs)
        assert tdma.arbiter == "tdma" and rr.arbiter == "round_robin"
        # Round-robin is work-conserving: with identical co-runners it can
        # only be as fast or faster than waiting for fixed TDMA slots.
        assert rr.cycles <= tdma.cycles
        # Interference metrics are surfaced for Pareto ranking.
        assert tdma.arbitration_cycles > 0
        frontier = pareto_frontier(
            [tdma, rr], (Objective("arbitration_cycles"),))
        assert frontier == [rr]

    def test_slot_weights_axis(self):
        specs = (ParameterSpace(["vector_sum"])
                 .axis("cores", [2])
                 .axis("slot_weights", ["1:1", "1:3"])).specs()
        assert specs[0].slot_weights == (1, 1)
        assert specs[1].slot_weights == (1, 3)
        assert specs[0].key() != specs[1].key()
        uniform, weighted = (execute_spec(spec) for spec in specs)
        # Shrinking core 0's share of the period can only slow it down.
        assert weighted.cycles >= uniform.cycles

    def test_bad_arbiter_and_weights_rejected(self):
        with pytest.raises(ExplorationError, match="unknown arbiter"):
            (ParameterSpace(["vector_sum"])
             .axis("arbiter", ["fifo"])).specs()
        with pytest.raises(ExplorationError, match="slot_weights"):
            (ParameterSpace(["vector_sum"])
             .axis("slot_weights", ["1:x"])).specs()

    def test_priority_spec_has_no_makespan_bound(self):
        # Only the top-priority core is analysable, so no bound can cover
        # the design point's reported makespan: the record must say so
        # instead of pairing the top core's bound with another core's time.
        spec = (ParameterSpace(["vector_sum"])
                .axis("cores", [2])
                .axis("arbiter", ["priority"])).specs()[0]
        result = execute_spec(spec)
        assert result.wcet_cycles is None
        assert result.cycles > 0

    def test_zero_slot_cycles_rejected(self):
        from repro.errors import ConfigError
        spec = (ParameterSpace(["vector_sum"])
                .axis("cores", [2])
                .axis("slot_cycles", [0])).specs()[0]
        with pytest.raises(ConfigError, match="slot length"):
            execute_spec(spec)

    def test_failed_spec_keeps_earlier_results_in_cache(self, tmp_path,
                                                        monkeypatch):
        specs = (ParameterSpace(["vector_sum", "fir_filter"])).specs()
        real = execute_spec

        def fail_on_fir(spec):
            if spec.kernel == "fir_filter":
                raise RuntimeError("worker died")
            return real(spec)
        monkeypatch.setattr(runner_module, "execute_spec", fail_on_fir)

        path = tmp_path / "cache.json"
        with pytest.raises(RuntimeError):
            ExplorationRunner(cache=ResultCache(path)).run(specs)
        # The completed vector_sum point survived the crash.
        survivor = ResultCache(path)
        assert len(survivor) == 1
        assert survivor.get(specs[0].key()) is not None

    def test_worker_errors_become_failed_cells(self, tmp_path):
        # A design point raising a library error no longer aborts the
        # sweep: it becomes a structured FailedCell — and so does every
        # duplicate spec sharing its key.
        space = (ParameterSpace(["vector_sum"])
                 .axis("cores", [2, 2])  # duplicate values, both invalid slot
                 .axis("slot_cycles", [1]))
        outcome = ExplorationRunner(jobs=2).run(space)
        assert not outcome.ok
        assert outcome.results == []
        assert len(outcome.failures) == 2
        assert all(cell.error == "ConfigError" for cell in outcome.failures)
        assert "failed" in outcome.summary()
        assert "ConfigError" in outcome.failure_summary()

    def test_failed_cells_do_not_abort_or_cache(self, tmp_path,
                                                monkeypatch):
        # One bad point in a sweep: the good points complete and are
        # cached, the bad one is reported, nothing of it enters the cache.
        from repro.errors import ExplorationError as ExploreError
        specs = (ParameterSpace(["vector_sum", "fir_filter"])).specs()
        real = execute_spec

        def fail_on_fir(spec):
            if spec.kernel == "fir_filter":
                raise ExploreError("bad design point")
            return real(spec)
        monkeypatch.setattr(runner_module, "execute_spec", fail_on_fir)

        path = tmp_path / "cache.json"
        outcome = ExplorationRunner(cache=ResultCache(path)).run(specs)
        assert len(outcome.results) == 1
        assert outcome.results[0].kernel == "vector_sum"
        assert len(outcome.failures) == 1
        assert outcome.failures[0].error == "ExplorationError"
        assert "bad design point" in outcome.failures[0].message
        survivor = ResultCache(path)
        assert len(survivor) == 1
        assert survivor.get(outcome.results[0].key) is not None
        assert survivor.get(outcome.failures[0].key) is None

    def test_no_wcet_mode(self):
        space = ParameterSpace(["vector_sum"], analyse_wcet=False)
        outcome = ExplorationRunner().run(space)
        assert outcome.results[0].wcet_cycles is None

    def test_table_renders(self):
        space = ParameterSpace(["vector_sum"])
        outcome = ExplorationRunner().run(space)
        table = outcome.table()
        assert "vector_sum" in table
        assert "WCET" in table


class TestCrashContainment:
    """A worker killed mid-cell must not abort the sweep (PR 7)."""

    def test_killed_worker_becomes_failed_cell(self, monkeypatch):
        import os
        import signal

        specs = ParameterSpace(["vector_sum", "fir_filter"]).specs()
        real = execute_spec

        def die_on_fir(spec):
            if spec.kernel == "fir_filter":
                os.kill(os.getpid(), signal.SIGKILL)
            return real(spec)
        # Forked pool workers call through runner_module._spec_worker and
        # inherit this replacement.
        monkeypatch.setattr(runner_module, "execute_spec", die_on_fir)

        runner = ExplorationRunner(jobs=2, max_retries=1,
                                   retry_backoff_s=0.0)
        outcome = runner.run(specs)
        # The innocent cell completed (round 0 or its isolated retry);
        # the poisoned cell became a structured failure record.
        assert [r.kernel for r in outcome.results] == ["vector_sum"]
        assert len(outcome.failures) == 1
        cell = outcome.failures[0]
        assert cell.error == "WorkerCrashed"
        assert cell.attempts == 2       # initial run + one retry
        assert cell.context["attempts"] == 2
        assert "worker process died" in cell.message
        assert not outcome.ok

    def test_killed_worker_failure_is_deterministic(self, monkeypatch):
        import os
        import signal

        specs = ParameterSpace(["vector_sum", "fir_filter"]).specs()
        real = execute_spec

        def die_on_fir(spec):
            if spec.kernel == "fir_filter":
                os.kill(os.getpid(), signal.SIGKILL)
            return real(spec)
        monkeypatch.setattr(runner_module, "execute_spec", die_on_fir)

        # max_retries >= 1 so an innocent cell whose future merely shared
        # the broken pool always recovers on its isolated retry.
        records = []
        for _ in range(2):
            outcome = ExplorationRunner(
                jobs=2, max_retries=1, retry_backoff_s=0.0).run(specs)
            assert [r.kernel for r in outcome.results] == ["vector_sum"]
            assert len(outcome.failures) == 1
            records.append(outcome.failures[0].to_dict())
        assert records[0] == records[1]

    def test_cli_reports_failures_and_exits_nonzero(self, monkeypatch,
                                                    tmp_path, capsys):
        from repro.errors import ExplorationError as ExploreError
        real = execute_spec

        def fail_on_fir(spec):
            if spec.kernel == "fir_filter":
                raise ExploreError("bad design point")
            return real(spec)
        monkeypatch.setattr(runner_module, "execute_spec", fail_on_fir)

        code = main(["--kernels", "vector_sum,fir_filter", "--no-cache",
                     "--no-pareto"])
        assert code == 2
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "bad design point" in err


class TestResultCache:
    def _space(self):
        return (ParameterSpace(["vector_sum", "fir_filter"])
                .axis("method_cache_size", [1024, 2048]))

    def test_second_run_hits_without_resimulating(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.json"
        first = ExplorationRunner(cache=ResultCache(path)).run(self._space())
        assert first.cache_misses == 4
        assert path.exists()

        # Any attempt to simulate again is an error: all four design points
        # must come from the cache.
        def boom(spec):
            raise AssertionError(f"re-simulated {spec.label()}")
        monkeypatch.setattr(runner_module, "execute_spec", boom)

        second = ExplorationRunner(cache=ResultCache(path)).run(self._space())
        assert second.cache_hits == 4
        assert second.cache_misses == 0
        assert all(result.from_cache for result in second.results)
        assert (json.dumps(first.to_records(), sort_keys=True)
                == json.dumps(second.to_records(), sort_keys=True))

    def test_partial_overlap_only_runs_new_points(self, tmp_path):
        path = tmp_path / "cache.json"
        ExplorationRunner(cache=ResultCache(path)).run(self._space())
        wider = (ParameterSpace(["vector_sum", "fir_filter"])
                 .axis("method_cache_size", [1024, 2048, 4096]))
        outcome = ExplorationRunner(cache=ResultCache(path)).run(wider)
        assert outcome.cache_hits == 4
        assert outcome.cache_misses == 2

    def test_corrupt_cache_quarantined(self, tmp_path):
        # An unreadable cache file no longer aborts the sweep: it is moved
        # into quarantine/ with a warning and the cache continues empty.
        path = tmp_path / "cache.json"
        path.write_text("{not json", encoding="utf-8")
        cache = ResultCache(path)
        with pytest.warns(RuntimeWarning, match="corrupt result cache"):
            assert cache.get("anything") is None
        assert not path.exists()
        quarantined = list(cache.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].read_text(encoding="utf-8") == "{not json"
        # The quarantined file survives saves of fresh results ...
        cache.put("k1", {"cycles": 1})
        cache.save()
        assert ResultCache(path).get("k1") == {"cycles": 1}
        assert quarantined[0].exists()
        # ... and clear() empties the quarantine along with the entries.
        cache.clear()
        cache.save()
        assert list(cache.quarantine_dir.iterdir()) == []
        assert len(ResultCache(path)) == 0

    def test_second_corruption_keeps_both_quarantined_files(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        for content in ("{first", "{second"):
            path.write_text(content, encoding="utf-8")
            cache._entries = None  # force a reload
            with pytest.warns(RuntimeWarning):
                cache.get("anything")
        names = sorted(f.name for f in cache.quarantine_dir.iterdir())
        assert names == ["cache.json", "cache.json.1"]

    def test_incompatible_version_discarded(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": {"k": {}}}),
                        encoding="utf-8")
        cache = ResultCache(path)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_atomic_save_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "cache.json"
        cache = ResultCache(path)
        cache.put("k1", {"cycles": 1})
        cache.save()
        fresh = ResultCache(path)
        assert fresh.get("k1") == {"cycles": 1}
        assert "k1" in fresh

    def test_save_merges_concurrent_writers(self, tmp_path):
        """Two sweeps sharing one cache file must not clobber each other:
        records another process persisted after our load survive our save."""
        path = tmp_path / "cache.json"
        ours = ResultCache(path)
        assert ours.get("k1") is None  # load the (empty) file first

        theirs = ResultCache(path)
        theirs.put("k_other", {"cycles": 7})
        theirs.save()

        ours.put("k1", {"cycles": 1})
        ours.save()

        fresh = ResultCache(path)
        assert fresh.get("k1") == {"cycles": 1}
        assert fresh.get("k_other") == {"cycles": 7}

    def test_save_keeps_newest_record_per_key(self, tmp_path):
        """On a key conflict the writer's own record wins (it is newer than
        the state it loaded), while untouched keys take the disk's newer
        version."""
        path = tmp_path / "cache.json"
        seed = ResultCache(path)
        seed.put("shared", {"cycles": 1})
        seed.put("untouched", {"cycles": 1})
        seed.save()

        ours = ResultCache(path)
        assert len(ours) == 2  # loaded both

        theirs = ResultCache(path)
        theirs.put("shared", {"cycles": 2})
        theirs.put("untouched", {"cycles": 2})
        theirs.save()

        ours.put("shared", {"cycles": 3})
        ours.save()

        fresh = ResultCache(path)
        assert fresh.get("shared") == {"cycles": 3}       # ours is newest
        assert fresh.get("untouched") == {"cycles": 2}    # theirs is newest

    def test_save_merge_survives_corrupt_concurrent_file(self, tmp_path):
        path = tmp_path / "cache.json"
        ours = ResultCache(path)
        ours.put("k1", {"cycles": 1})
        path.write_text("{not json", encoding="utf-8")  # concurrent torn write
        ours.save()  # must not raise, must not lose our record
        fresh = ResultCache(path)
        assert fresh.get("k1") == {"cycles": 1}

    def test_clear_empties_the_file(self, tmp_path):
        path = tmp_path / "cache.json"
        seed = ResultCache(path)
        seed.put("k1", {"cycles": 1})
        seed.save()
        seed.clear()
        seed.save()
        fresh = ResultCache(path)
        assert len(fresh) == 0  # an explicit clear does not merge back


class TestPareto:
    # Hand-built fixture: minimize "wcet" and "cycles", maximize "fmax".
    POINTS = [
        {"kernel": "a", "wcet": 100, "cycles": 50, "fmax": 200.0},
        {"kernel": "b", "wcet": 80, "cycles": 60, "fmax": 200.0},
        {"kernel": "c", "wcet": 100, "cycles": 50, "fmax": 250.0},  # dominates a
        {"kernel": "d", "wcet": 120, "cycles": 70, "fmax": 150.0},  # dominated
        {"kernel": "e", "wcet": 80, "cycles": 60, "fmax": 200.0},   # ties b
    ]
    OBJECTIVES = (Objective("wcet"), Objective("cycles"),
                  Objective("fmax", maximize=True))

    def test_frontier_on_fixture(self):
        frontier = pareto_frontier(self.POINTS, self.OBJECTIVES)
        assert [p["kernel"] for p in frontier] == ["b", "c", "e"]

    def test_single_objective(self):
        frontier = pareto_frontier(self.POINTS, (Objective("wcet"),))
        assert [p["kernel"] for p in frontier] == ["b", "e"]

    def test_maximize_objective(self):
        frontier = pareto_frontier(self.POINTS,
                                   (Objective("fmax", maximize=True),))
        assert [p["kernel"] for p in frontier] == ["c"]

    def test_missing_objective_skipped(self):
        points = [{"kernel": "a", "wcet": None, "cycles": 10},
                  {"kernel": "b", "wcet": 5, "cycles": 20}]
        frontier = pareto_frontier(
            points, (Objective("wcet"), Objective("cycles")))
        # "wcet" is undefined on point a, so only "cycles" ranks the points.
        assert [p["kernel"] for p in frontier] == ["a"]

    def test_all_objectives_missing_is_an_error(self):
        points = [{"kernel": "a", "wcet": None}]
        with pytest.raises(ExplorationError, match="no objective"):
            pareto_frontier(points, (Objective("wcet"),))

    def test_empty_input(self):
        assert pareto_frontier([], self.OBJECTIVES) == []

    def test_table_lists_frontier_only(self):
        table = pareto_table(self.POINTS, self.OBJECTIVES)
        assert "3 of 5 design points" in table
        assert "d" not in [line.split()[0] for line in table.splitlines()[2:]]

    def test_frontier_of_real_results(self):
        space = (ParameterSpace(["vector_sum"])
                 .axis("method_cache_size", [1024, 4096]))
        outcome = ExplorationRunner().run(space)
        frontier = outcome.frontier()
        assert frontier  # never empty on non-empty input
        assert all(isinstance(result, SpecResult) for result in frontier)


class TestCli:
    def test_coerce_value(self):
        assert coerce_value("1024") == 1024
        assert coerce_value("1.5") == 1.5
        assert coerce_value("true") is True
        assert coerce_value("fifo") == "fifo"

    def test_parse_axis(self):
        name, values = parse_axis("method_cache_size=1024,2048")
        assert name == "method_cache_size"
        assert values == [1024, 2048]
        with pytest.raises(Exception):
            parse_axis("no_equals_sign")

    def test_sweep_then_cached_sweep(self, tmp_path, capsys):
        argv = ["--kernels", "vector_sum,fir_filter",
                "--axis", "method_cache_size=1024,2048,4096",
                "--cache", str(tmp_path / "cache.json")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "6 design points" in first
        assert "0 cache hits, 6 executed" in first
        assert "Pareto frontier" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "6 cache hits, 0 executed" in second
        # Identical result rows (only the trailing "cached" column differs).
        def rows(text):
            return [line.split()[:-1] for line in text.splitlines()
                    if line.startswith(("vector_sum", "fir_filter"))]
        assert rows(first) == rows(second)

    def test_unknown_kernel_reports_error(self, tmp_path, capsys):
        code = main(["--kernels", "nope", "--no-cache"])
        assert code == 1
        assert "unknown kernel" in capsys.readouterr().err

    def test_no_wcet_objectives(self, tmp_path, capsys):
        code = main(["--kernels", "vector_sum", "--no-wcet",
                     "--cache", str(tmp_path / "cache.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "wcet_cycles" not in out

    def test_unknown_objective_fails_before_sweeping(self, capsys):
        code = main(["--kernels", "vector_sum", "--no-cache",
                     "--objectives", "bogus"])
        assert code == 1
        captured = capsys.readouterr()
        assert "unknown objective" in captured.err
        # The typo is caught before any design point is simulated.
        assert "design points in" not in captured.out
