"""Tests for the WCET-aware compiler passes."""

import pytest

from repro import (
    CompileOptions,
    CycleSimulator,
    PatmosConfig,
    ProgramBuilder,
    compile_and_link,
    compile_program,
)
from repro.compiler import (
    BlockScheduler,
    build_dependence_graph,
    if_convert_function,
    schedule_program,
    single_path_function,
    split_program,
)
from repro.compiler.simplify import merge_straightline_blocks
from repro.compiler.stack_alloc import allocate_function, frame_size_words
from repro.config import MethodCacheConfig
from repro.errors import CompilerError
from repro.isa import Opcode
from repro.workloads import (
    build_call_tree,
    build_large_function,
    build_linear_search,
    build_saturate,
    build_stack_chain,
)


def _instr(mnemonic, *ops, pred=None):
    from repro.program.builder import _make_instruction, parse_guard
    from repro.isa.opcodes import opcode_from_mnemonic
    return _make_instruction(opcode_from_mnemonic(mnemonic), ops,
                             parse_guard(pred))


class TestDependenceGraph:
    def test_raw_distance_for_alu(self, config):
        instrs = [_instr("addi", "r1", "r0", 1), _instr("add", "r2", "r1", "r1")]
        graph = build_dependence_graph(instrs, config.pipeline)
        raw = [e for e in graph.edges if e.kind == "raw"]
        assert raw and raw[0].distance == 1

    def test_raw_distance_for_load(self, config):
        instrs = [_instr("lwc", "r1", "r2", 0), _instr("add", "r3", "r1", "r1")]
        graph = build_dependence_graph(instrs, config.pipeline)
        raw = [e for e in graph.edges if e.kind == "raw"]
        assert raw[0].distance == 1 + config.pipeline.load_delay_slots

    def test_raw_distance_for_mul(self, config):
        instrs = [_instr("mul", "r1", "r2"), _instr("mfs", "r3", "sl")]
        graph = build_dependence_graph(instrs, config.pipeline)
        raw = [e for e in graph.edges if e.kind == "raw"]
        assert raw[0].distance == 1 + config.pipeline.mul_delay_slots

    def test_war_allows_same_bundle(self, config):
        instrs = [_instr("add", "r3", "r1", "r2"), _instr("addi", "r1", "r0", 5)]
        graph = build_dependence_graph(instrs, config.pipeline)
        war = [e for e in graph.edges if e.kind == "war"]
        assert war and war[0].distance == 0

    def test_memory_operations_keep_order(self, config):
        instrs = [_instr("swc", "r1", 0, "r2"), _instr("lwc", "r3", "r1", 0)]
        graph = build_dependence_graph(instrs, config.pipeline)
        order = [e for e in graph.edges if e.kind == "order"]
        assert order and order[0].distance >= 1

    def test_wmem_defines_split_load_register(self, config):
        instrs = [_instr("lwm", "r1", "r2", 0), _instr("wmem"),
                  _instr("add", "r3", "r1", "r1")]
        graph = build_dependence_graph(instrs, config.pipeline)
        raw_from_wmem = [e for e in graph.edges
                         if e.kind == "raw" and e.src == 1 and e.dst == 2]
        assert raw_from_wmem

    def test_split_load_distance_hint(self, config):
        instrs = [_instr("lwm", "r1", "r2", 0), _instr("wmem")]
        graph = build_dependence_graph(instrs, config.pipeline,
                                       split_load_distance=14)
        order = [e for e in graph.edges if e.dst == 1]
        assert max(e.distance for e in order) == 14

    def test_critical_path_lengths(self, config):
        instrs = [_instr("lwc", "r1", "r2", 0), _instr("add", "r3", "r1", "r1"),
                  _instr("add", "r4", "r3", "r3")]
        graph = build_dependence_graph(instrs, config.pipeline)
        lengths = graph.critical_path_lengths()
        assert lengths[0] > lengths[1] > lengths[2] == 0


class TestScheduler:
    def _schedule(self, instrs, config, **kwargs):
        from repro.program.basic_block import BasicBlock
        block = BasicBlock(label="b", instrs=list(instrs))
        return BlockScheduler(config, **kwargs).schedule_block(block)

    def test_independent_instructions_are_paired(self, config):
        bundles = self._schedule(
            [_instr("addi", "r1", "r0", 1), _instr("addi", "r2", "r0", 2)], config)
        assert len(bundles) == 1 and len(bundles[0]) == 2

    def test_dependent_instructions_are_serialised(self, config):
        bundles = self._schedule(
            [_instr("addi", "r1", "r0", 1), _instr("add", "r2", "r1", "r1")],
            config)
        assert len(bundles) == 2

    def test_single_issue_never_pairs(self, config):
        bundles = self._schedule(
            [_instr("addi", "r1", "r0", 1), _instr("addi", "r2", "r0", 2)],
            config, dual_issue=False)
        assert all(len(b) == 1 for b in bundles)

    def test_two_slot0_only_instructions_not_paired(self, config):
        bundles = self._schedule(
            [_instr("lwc", "r1", "r0", 0), _instr("lwc", "r2", "r0", 4)], config)
        assert len(bundles) >= 2

    def test_slot0_only_placed_first_in_bundle(self, config):
        bundles = self._schedule(
            [_instr("addi", "r1", "r0", 1), _instr("lwc", "r2", "r0", 0)], config)
        paired = [b for b in bundles if len(b) == 2]
        assert paired and paired[0].first.opcode is Opcode.LWC

    def test_branch_gets_exact_delay_slots(self, config):
        instrs = [_instr("addi", "r1", "r0", 1), _instr("br", "target")]
        bundles = self._schedule(instrs, config)
        branch_index = next(i for i, b in enumerate(bundles)
                            if b.first.opcode is Opcode.BR)
        assert len(bundles) - 1 - branch_index == config.pipeline.branch_delay_slots

    def test_call_gets_exact_delay_slots(self, config):
        instrs = [_instr("call", "callee")]
        bundles = self._schedule(instrs, config)
        assert len(bundles) == 1 + config.pipeline.call_delay_slots

    def test_load_delay_padded_at_block_end(self, config):
        bundles = self._schedule([_instr("lwc", "r1", "r0", 0)], config)
        # The load needs one exposed delay slot before the block boundary.
        assert len(bundles) == 2

    def test_terminator_waits_for_guard_producer(self, config):
        instrs = [_instr("cmpineq", "p1", "r1", 0), _instr("br", "loop", pred="p1")]
        bundles = self._schedule(instrs, config)
        cmp_index = next(i for i, b in enumerate(bundles)
                         if b.first.opcode is Opcode.CMPINEQ)
        br_index = next(i for i, b in enumerate(bundles)
                        if b.first.opcode is Opcode.BR)
        assert br_index > cmp_index

    def test_schedule_stats(self, config):
        kernel = build_saturate(8)
        program = kernel.program.copy()
        from repro.compiler import ScheduleStats
        stats = ScheduleStats()
        schedule_program(program, config, stats=stats)
        assert stats.blocks > 0
        assert stats.bundles >= stats.blocks
        assert 0.0 < stats.slot_utilisation <= 1.0


class TestIfConversion:
    def test_saturate_branches_removed(self):
        kernel = build_saturate(8)
        function = kernel.program.copy().function("main")
        blocks_before = len(function.blocks)
        stats = if_convert_function(function)
        assert stats.converted_triangles + stats.converted_diamonds >= 2
        assert len(function.blocks) < blocks_before
        # The loop collapses to a single self-loop block.
        loop = function.block("loop")
        assert loop.terminator().target == "loop"

    def test_semantics_preserved(self, config):
        kernel = build_saturate(16)
        baseline, _ = compile_and_link(kernel.program, config)
        converted, _ = compile_and_link(kernel.program, config,
                                        CompileOptions(if_convert=True))
        base_run = CycleSimulator(baseline, strict=True).run()
        conv_run = CycleSimulator(converted, strict=True).run()
        assert base_run.output == conv_run.output == kernel.expected_output

    def test_bubble_sort_swap_predicated(self, config):
        from repro.workloads import build_bubble_sort
        kernel = build_bubble_sort(6)
        image, result = compile_and_link(kernel.program, config,
                                         CompileOptions(if_convert=True))
        assert result.if_conversion.converted_triangles >= 1
        run = CycleSimulator(image, strict=True).run()
        assert run.output == kernel.expected_output

    def test_calls_are_not_converted(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.emit("cmpineq", "p1", "r1", 0)
        f.br("skip", pred="p1")
        f.call("helper")
        f.label("skip")
        f.halt()
        g = b.function("helper")
        g.ret()
        program = b.build()
        function = program.function("main")
        stats = if_convert_function(function)
        assert stats.converted_triangles == 0

    def test_merge_straightline_blocks(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.li("r1", 1)
        f.br("tail")
        f.label("tail")
        f.out("r1")
        f.halt()
        function = b.build().function("main")
        merges = merge_straightline_blocks(function)
        assert merges >= 1
        assert len(function.blocks) == 1


class TestSinglePath:
    def test_linear_search_time_independent_of_key(self, config):
        outputs = []
        cycles = {"baseline": [], "single_path": []}
        for key_index in (2, 15, 30):
            kernel = build_linear_search(32, key_index=key_index)
            base_image, _ = compile_and_link(kernel.program, config)
            sp_image, _ = compile_and_link(kernel.program, config,
                                           CompileOptions(single_path=True))
            base = CycleSimulator(base_image, strict=True).run()
            sp = CycleSimulator(sp_image, strict=True).run()
            assert base.output == kernel.expected_output
            assert sp.output == kernel.expected_output
            outputs.append(sp.output)
            cycles["baseline"].append(base.cycles)
            cycles["single_path"].append(sp.cycles)
        # Baseline execution time depends on the key position ...
        assert len(set(cycles["baseline"])) > 1
        # ... single-path execution time does not (the paper's E7 claim).
        assert len(set(cycles["single_path"])) == 1

    def test_single_path_requires_loop_bound(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.li("r1", 3)
        f.label("loop")
        f.emit("subi", "r1", "r1", 1)
        f.emit("cmpineq", "p1", "r1", 0)
        f.br("loop", pred="p1")
        f.halt()
        function = b.build().function("main")
        with pytest.raises(CompilerError):
            single_path_function(function)

    def test_saturate_single_path_preserves_results(self, config):
        kernel = build_saturate(16)
        image, _ = compile_and_link(kernel.program, config,
                                    CompileOptions(single_path=True))
        run = CycleSimulator(image, strict=True).run()
        assert run.output == kernel.expected_output


class TestStackAllocation:
    def test_frames_inserted_for_non_leaf(self):
        kernel = build_call_tree(num_functions=2, iterations=1)
        program = kernel.program.copy()
        main = program.function("main")
        allocate_function(main)
        opcodes = [i.opcode for i in main.instructions()]
        assert Opcode.SRES in opcodes
        assert Opcode.SENS in opcodes
        assert frame_size_words(main) == 2  # saved srb/sro only

    def test_leaf_without_frame_untouched(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.li("r1", 1)
        f.halt()
        function = b.build().function("main")
        allocate_function(function)
        assert all(i.opcode is not Opcode.SRES for i in function.instructions())

    def test_manual_stack_control_rejected(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.frame(4)
        f.emit("sres", 4)
        f.halt()
        function = b.build().function("main")
        with pytest.raises(CompilerError):
            allocate_function(function)

    def test_stack_chain_runs_with_spills(self, config):
        kernel = build_stack_chain(depth=8, frame_words=40)
        image, _ = compile_and_link(kernel.program, config)
        sim = CycleSimulator(image, strict=True)
        run = sim.run()
        assert run.output == kernel.expected_output
        assert sim.stack_cache.total_spilled_words > 0
        assert sim.stack_cache.total_filled_words > 0


class TestFunctionSplitting:
    def test_oversized_function_is_split(self, config):
        kernel = build_large_function(blocks=48, instructions_per_block=24,
                                      iterations=1)
        result = compile_program(kernel.program, config)
        split_names = [name for name in result.program.functions
                       if name.startswith("big.part")]
        assert split_names, "expected sub-functions to be created"
        for name in split_names:
            func = result.program.function(name)
            assert func.is_subfunction and func.parent == "big"
            assert func.scheduled_size_bytes() <= config.method_cache.size_bytes

    def test_split_program_semantics_preserved(self, config):
        kernel = build_large_function(blocks=48, instructions_per_block=24,
                                      iterations=2)
        split_image, _ = compile_and_link(kernel.program, config)
        unsplit_image, _ = compile_and_link(
            kernel.program, config, CompileOptions(split_functions=False))
        split_run = CycleSimulator(split_image, strict=True).run()
        unsplit_run = CycleSimulator(unsplit_image, strict=True).run()
        assert split_run.output == unsplit_run.output == kernel.expected_output

    def test_small_functions_untouched(self, config):
        kernel = build_call_tree()
        program = compile_program(kernel.program, config).program
        assert all(not f.is_subfunction for f in program.functions.values())

    def test_split_respects_budget(self, config):
        kernel = build_large_function(blocks=48, instructions_per_block=24,
                                      iterations=1)
        program = kernel.program.copy()
        schedule_program(program, config)
        stats = split_program(program, config, max_bytes=1024)
        assert stats.functions_split == 1
        for sizes in stats.region_sizes.values():
            assert all(size <= 1024 for size in sizes)


class TestPassManager:
    def test_compile_program_leaves_input_unscheduled(self, config):
        kernel = build_saturate(8)
        result = compile_program(kernel.program, config)
        assert result.program.is_scheduled
        assert not kernel.program.is_scheduled

    def test_all_options_produce_correct_code(self, config):
        kernel = build_saturate(12)
        for options in (
            CompileOptions(),
            CompileOptions(dual_issue=False),
            CompileOptions(if_convert=True),
            CompileOptions(single_path=True),
            CompileOptions(hide_split_loads=False),
        ):
            image, _ = compile_and_link(kernel.program, config, options)
            run = CycleSimulator(image, strict=True).run()
            assert run.output == kernel.expected_output, options

    def test_small_method_cache_forces_splitting(self):
        config = PatmosConfig(method_cache=MethodCacheConfig(size_bytes=1024,
                                                             num_blocks=8))
        kernel = build_large_function(blocks=24, instructions_per_block=24,
                                      iterations=1)
        image, result = compile_and_link(kernel.program, config)
        assert result.split.functions_split == 1
        run = CycleSimulator(image, config=config, strict=True).run()
        assert run.output == kernel.expected_output
