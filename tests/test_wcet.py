"""Tests of the WCET analysis: IPET, cache analyses and whole-program bounds."""

import pytest

from repro import (
    CompileOptions,
    CycleSimulator,
    PatmosConfig,
    ProgramBuilder,
    compile_and_link,
)
from repro.config import MethodCacheConfig
from repro.errors import WcetError
from repro.memory import TdmaSchedule
from repro.program import ControlFlowGraph
from repro.wcet import (
    WcetOptions,
    analyse_method_cache,
    analyse_stack_cache,
    analyse_static_cache,
    analyze_wcet,
    longest_path_dag,
    solve_ipet,
    summarise_function,
)
from repro.workloads import (
    build_call_tree,
    build_fir_filter,
    build_linear_search,
    build_matmul,
    build_mixed_access,
    build_saturate,
    build_stack_chain,
    build_vector_sum,
)


def _compiled(kernel, config=None, options=CompileOptions()):
    config = config or PatmosConfig()
    image, _ = compile_and_link(kernel.program, config, options)
    return image


class TestIpet:
    def _cfg(self, build):
        b = ProgramBuilder("p")
        f = b.function("main")
        build(f)
        program = b.build()
        return ControlFlowGraph.build(program.function("main"))

    def test_straight_line(self):
        cfg = self._cfg(lambda f: (f.li("r1", 1), f.halt()))
        result = solve_ipet(cfg, {label: 5 for label in cfg.function.block_labels()})
        assert result.wcet == 5 * len(cfg.function.blocks)

    def test_if_else_takes_longer_side(self):
        def build(f):
            f.emit("cmpineq", "p1", "r1", 0)
            f.br("else_side", pred="p1")
            f.li("r2", 1)
            f.br("join")
            f.label("else_side")
            f.li("r3", 1)
            f.label("join")
            f.halt()
        cfg = self._cfg(build)
        costs = {label: 1 for label in cfg.function.block_labels()}
        costs["else_side"] = 50
        result = solve_ipet(cfg, costs)
        assert result.wcet >= 50
        assert result.block_counts["else_side"] == 1

    def test_loop_bound_respected(self):
        def build(f):
            f.li("r1", 10)
            f.label("loop")
            f.emit("subi", "r1", "r1", 1)
            f.emit("cmpineq", "p1", "r1", 0)
            f.br("loop", pred="p1")
            f.loop_bound("loop", 10)
            f.halt()
        cfg = self._cfg(build)
        costs = {label: 1 for label in cfg.function.block_labels()}
        costs["loop"] = 7
        result = solve_ipet(cfg, costs)
        assert result.block_counts["loop"] == 10
        assert result.wcet == 10 * 7 + (len(cfg.function.blocks) - 1)

    def test_missing_loop_bound_rejected(self):
        def build(f):
            f.label("loop")
            f.emit("subi", "r1", "r1", 1)
            f.emit("cmpineq", "p1", "r1", 0)
            f.br("loop", pred="p1")
            f.halt()
        cfg = self._cfg(build)
        with pytest.raises(WcetError):
            solve_ipet(cfg, {label: 1 for label in cfg.function.block_labels()})

    def test_explicit_bound_overrides(self):
        def build(f):
            f.label("loop")
            f.emit("subi", "r1", "r1", 1)
            f.emit("cmpineq", "p1", "r1", 0)
            f.br("loop", pred="p1")
            f.halt()
        cfg = self._cfg(build)
        result = solve_ipet(cfg, {label: 1 for label in cfg.function.block_labels()},
                            loop_bounds={"loop": 4})
        assert result.block_counts["loop"] == 4

    def test_dag_longest_path_matches_ipet(self):
        def build(f):
            f.emit("cmpineq", "p1", "r1", 0)
            f.br("other", pred="p1")
            f.li("r2", 1)
            f.br("join")
            f.label("other")
            f.li("r3", 1)
            f.label("join")
            f.halt()
        cfg = self._cfg(build)
        costs = {label: 3 for label in cfg.function.block_labels()}
        assert longest_path_dag(cfg, costs) == solve_ipet(cfg, costs).wcet


class TestCacheAnalyses:
    def test_method_cache_persistence_when_everything_fits(self, config):
        kernel = build_call_tree(num_functions=3, pad_instructions=8)
        image = _compiled(kernel, config)
        analysis = analyse_method_cache(image, config, mode="persistence")
        assert analysis.fits_all
        assert all(cost == 0 for cost in analysis.per_target_cost.values())
        assert analysis.one_off_cycles > 0

    def test_method_cache_always_miss_when_too_small(self):
        config = PatmosConfig(method_cache=MethodCacheConfig(size_bytes=512,
                                                             num_blocks=4))
        kernel = build_call_tree(num_functions=6, pad_instructions=40)
        image = _compiled(kernel, config)
        analysis = analyse_method_cache(image, config, mode="persistence")
        assert not analysis.fits_all
        assert any(cost > 0 for cost in analysis.per_target_cost.values())

    def test_static_cache_persistence_checks_conflicts(self, config):
        kernel = build_vector_sum(16)
        image = _compiled(kernel, config)
        analysis = analyse_static_cache(image, config, mode="persistence")
        assert analysis.persistent
        assert analysis.per_read_cost == 0
        assert analysis.one_off_cycles > 0

    def test_unified_cache_analysis_is_pessimistic(self, config):
        kernel = build_vector_sum(16)
        image = _compiled(kernel, config)
        unified = analyse_static_cache(image, config, unified=True)
        assert not unified.persistent
        assert unified.per_read_cost > 0

    def test_stack_cache_refined_beats_naive(self, config):
        kernel = build_stack_chain(depth=8, frame_words=40)
        image = _compiled(kernel, config)
        frames = {name: 42 for name in image.program.functions}
        frames["main"] = 2
        refined = analyse_stack_cache(image.program, config, frames,
                                      mode="refined")
        naive = analyse_stack_cache(image.program, config, frames, mode="naive")
        assert sum(refined.spill_words.values()) <= sum(naive.spill_words.values())
        # The first levels fit in the cache, so their sres never spills.
        assert refined.spill_words["level0"] == 0

    def test_stack_cache_rejects_recursion(self, config):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.call("main")
        f.halt()
        with pytest.raises(WcetError):
            analyse_stack_cache(b.build(), config, {"main": 2})


class TestBlockSummaries:
    def test_summary_counts_events(self, config):
        kernel = build_mixed_access(8)
        image = _compiled(kernel, config)
        summaries = summarise_function(image.program.function("main"))
        from repro.isa import MemType
        reads = {mem_type: 0 for mem_type in MemType}
        for summary in summaries.values():
            for mem_type in MemType:
                reads[mem_type] += summary.read_count(mem_type)
        assert reads[MemType.STATIC] >= 1
        assert reads[MemType.OBJECT] >= 1
        assert reads[MemType.STACK] >= 1
        assert reads[MemType.LOCAL] >= 1


KERNEL_BUILDERS = [
    ("vector_sum", build_vector_sum, {}),
    ("fir_filter", build_fir_filter, {}),
    ("matmul", build_matmul, {}),
    ("saturate", build_saturate, {}),
    ("linear_search", build_linear_search, {}),
    ("call_tree", build_call_tree, {}),
    ("stack_chain", build_stack_chain, {}),
    ("mixed_access", build_mixed_access, {}),
]


class TestWholeProgramBounds:
    @pytest.mark.parametrize("name,builder,kwargs", KERNEL_BUILDERS,
                             ids=[k[0] for k in KERNEL_BUILDERS])
    def test_bound_is_sound_and_reasonably_tight(self, config, name, builder,
                                                 kwargs):
        kernel = builder(**kwargs)
        image = _compiled(kernel, config)
        observed = CycleSimulator(image, strict=True).run()
        assert observed.output == kernel.expected_output
        result = analyze_wcet(image, config)
        assert result.wcet_cycles >= observed.cycles, name
        # The exposed-delay pipeline and analysable caches keep the bound
        # within a small factor of the observation for these kernels.
        assert result.tightness(observed.cycles) < 6.0, name

    def test_conventional_icache_analysis_is_more_pessimistic(self, config):
        # With a cache smaller than the program, the conventional-I$ analysis
        # has to assume every fetch misses, while the method-cache analysis
        # still only pays at call/return — the paper's analysability argument.
        kernel = build_call_tree(num_functions=4, iterations=4)
        small = config.with_(method_cache=MethodCacheConfig(size_bytes=512,
                                                            num_blocks=4))
        image = _compiled(kernel, small)
        method = analyze_wcet(image, small)
        conventional = analyze_wcet(
            image, small, options=WcetOptions(conventional_icache=True))
        assert conventional.wcet_cycles > method.wcet_cycles
        assert conventional.icache is not None
        assert not conventional.icache.fits_whole_program

    def test_unified_cache_bound_larger_than_split(self, config):
        kernel = build_mixed_access(16)
        image = _compiled(kernel, config)
        split = analyze_wcet(image, config)
        unified = analyze_wcet(image, config,
                               options=WcetOptions(unified_data_cache=True))
        assert unified.wcet_cycles > split.wcet_cycles

    def test_tdma_increases_bound(self, config):
        kernel = build_vector_sum(16)
        image = _compiled(kernel, config)
        alone = analyze_wcet(image, config)
        shared = analyze_wcet(image, config, options=WcetOptions(
            tdma=TdmaSchedule(num_cores=4,
                              slot_cycles=config.memory.burst_cycles())))
        assert shared.wcet_cycles > alone.wcet_cycles

    def test_round_robin_interference_model(self, config):
        kernel = build_vector_sum(16)
        image = _compiled(kernel, config)
        alone = analyze_wcet(image, config)
        two = analyze_wcet(image, config, options=WcetOptions(
            arbiter="round_robin", arbiter_cores=2))
        four = analyze_wcet(image, config, options=WcetOptions(
            arbiter="round_robin", arbiter_cores=4))
        # (N - 1) maximal transfers per access: grows with the core count.
        assert alone.wcet_cycles < two.wcet_cycles < four.wcet_cycles
        # The four-core round-robin bound beats the four-core TDMA bound
        # (period - 1 > 3 bursts), which is the paper's point: round-robin
        # *bounds* are not the problem, their co-runner dependence is.
        tdma = analyze_wcet(image, config, options=WcetOptions(
            tdma=TdmaSchedule(num_cores=4,
                              slot_cycles=config.memory.burst_cycles())))
        assert four.wcet_cycles <= tdma.wcet_cycles

    def test_priority_interference_model(self, config):
        kernel = build_vector_sum(16)
        image = _compiled(kernel, config)
        alone = analyze_wcet(image, config)
        top = analyze_wcet(image, config, options=WcetOptions(
            arbiter="priority", arbiter_cores=4))
        assert alone.wcet_cycles < top.wcet_cycles
        with pytest.raises(WcetError, match="priority"):
            analyze_wcet(image, config, options=WcetOptions(
                arbiter="priority", arbiter_cores=4, priority_rank=1))

    def test_unknown_arbiter_model_rejected(self, config):
        kernel = build_vector_sum(16)
        image = _compiled(kernel, config)
        with pytest.raises(WcetError, match="unknown arbiter"):
            analyze_wcet(image, config, options=WcetOptions(
                arbiter="lottery", arbiter_cores=2))

    def test_indirect_calls_rejected(self, config):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.li("r1", 0x10000)
        f.emit("callr", "r1")
        f.halt()
        image, _ = compile_and_link(b.build(), config)
        with pytest.raises(WcetError):
            analyze_wcet(image, config)

    def test_summary_and_per_function_breakdown(self, config):
        kernel = build_call_tree(num_functions=3)
        image = _compiled(kernel, config)
        result = analyze_wcet(image, config)
        assert "main" in result.per_function
        assert "work0" in result.per_function
        assert "main" in result.summary()

    def test_single_path_bound_equals_observation(self, config):
        # Single-path code over scratchpad data: the WCET bound and the
        # observation coincide apart from the one-off cache fills.
        kernel = build_linear_search(24, key_index=3)
        image = _compiled(kernel, config, CompileOptions(single_path=True))
        observed = CycleSimulator(image, strict=True).run()
        result = analyze_wcet(image, config)
        assert result.wcet_cycles >= observed.cycles
        assert result.tightness(observed.cycles) < 1.2
