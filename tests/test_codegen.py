"""The jit engine's compilation cache lifecycle and escape hatches.

Golden equivalence of the generated code itself is pinned by
``tests/test_engine_equivalence.py`` (every kernel, every mode, every
engine).  This module covers the machinery *around* the generated code:

* cold versus warm on-disk cache runs are bit-identical, and a warm run
  really loads from disk (code generation is never re-entered);
* a ``CODEGEN_VERSION`` bump makes old entries unreachable without any
  invalidation pass;
* corrupt cache entries are quarantined — kept for diagnosis, never
  crashing or poisoning a run;
* concurrent writers of the same entry leave a consistent cache;
* ``REPRO_NO_JIT=1`` falls back to the micro-op interpreter with identical
  results and writes nothing;
* ``DecodedProgram.codegen_key`` addresses decode variants, and the
  ``--dump`` CLI prints the generated module.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.compiler import CompileOptions, compile_and_link
from repro.config import PatmosConfig
from repro.sim import CycleSimulator, FunctionalSimulator
from repro.sim.engine import decode_image
from repro.workloads import build_kernel


def canonical(result):
    return {
        "cycles": result.cycles,
        "bundles": result.bundles,
        "instructions": result.instructions,
        "nops": result.nops,
        "output": result.output,
        "stalls": result.stalls.to_dict(),
        "block_counts": result.block_counts,
        "call_counts": result.call_counts,
        "halted": result.halted,
    }


@pytest.fixture
def jit_cache(tmp_path, monkeypatch):
    """An isolated on-disk jit cache (never the user's real one)."""
    cache = tmp_path / "jitcache"
    monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(cache))
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)
    return cache


def fresh_image(name="vector_sum"):
    """A newly linked image: a fresh decode, a fresh in-process jit memo.

    The in-process compilation memo lives on the decoded program, and the
    decode itself is cached per image — so exercising the *disk* cache
    paths requires a fresh image object each run.
    """
    kernel = build_kernel(name)
    image, _ = compile_and_link(kernel.program, PatmosConfig(),
                                CompileOptions(dual_issue=True))
    return image, kernel


def run_engine(image, engine, sim_cls=FunctionalSimulator):
    return canonical(sim_cls(image, config=PatmosConfig(), strict=True,
                             engine=engine).run())


def cache_entries(cache):
    return sorted(path.name for path in cache.glob("*.py"))


class _GenerateSpy:
    """Counts (and delegates) the context module's generate_source calls."""

    def __init__(self, monkeypatch):
        from repro.sim.codegen import context, generator
        self.calls = 0

        def spy(*args, **kwargs):
            self.calls += 1
            return generator.generate_source(*args, **kwargs)

        monkeypatch.setattr(context, "generate_source", spy)


class TestCacheLifecycle:
    def test_cold_then_warm_identical_and_warm_loads_from_disk(
            self, jit_cache, monkeypatch):
        spy = _GenerateSpy(monkeypatch)
        image, kernel = fresh_image()
        ref = run_engine(image, "reference")
        cold = run_engine(image, "jit")
        assert cold == ref
        assert cold["output"] == kernel.expected_output
        entries = cache_entries(jit_cache)
        assert entries, "cold run must persist the generated module"
        assert spy.calls == 1

        warm_image, _ = fresh_image()
        warm = run_engine(warm_image, "jit")
        assert warm == cold
        assert spy.calls == 1, "warm run must not regenerate"
        assert cache_entries(jit_cache) == entries

    def test_version_bump_invalidates_old_entries(self, jit_cache,
                                                  monkeypatch):
        from repro.sim.codegen import generator
        spy = _GenerateSpy(monkeypatch)
        image, _ = fresh_image()
        first = run_engine(image, "jit")
        old_entries = cache_entries(jit_cache)
        assert spy.calls == 1

        monkeypatch.setattr(generator, "CODEGEN_VERSION",
                            generator.CODEGEN_VERSION + 1)
        bumped_image, _ = fresh_image()
        bumped = run_engine(bumped_image, "jit")
        assert bumped == first
        assert spy.calls == 2, "a version bump must regenerate"
        entries = cache_entries(jit_cache)
        # Old entries become unreachable but are not deleted; the bumped
        # specialisation gets its own entry under the new key.
        assert set(old_entries) < set(entries)

    @pytest.mark.parametrize("corruption", [
        "def make(:  # truncated mid-write\n",
        "GENERATED_KEY = 'not-the-right-key'\n"
        "LEADERS = ()\n"
        "def make(table):\n"
        "    def run(*a, **k):\n"
        "        raise AssertionError('stale module executed')\n"
        "    return run\n",
    ], ids=["syntax_error", "wrong_key"])
    def test_corrupt_entry_quarantined_never_crashes(self, jit_cache,
                                                     corruption):
        image, _ = fresh_image()
        expected = run_engine(image, "jit")
        [entry] = [jit_cache / name for name in cache_entries(jit_cache)]
        entry.write_text(corruption)

        corrupt_image, _ = fresh_image()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            regenerated = run_engine(corrupt_image, "jit")
        assert regenerated == expected
        quarantined = list((jit_cache / "quarantine").glob("*.py*"))
        assert len(quarantined) == 1
        # Evidence preserved: the quarantined bytes are the corrupt ones.
        assert quarantined[0].read_text() == corruption
        # And the entry was regenerated in place for the next run.
        assert "GENERATED_KEY" in entry.read_text()

    def test_concurrent_writers_leave_consistent_cache(self, jit_cache):
        images = [fresh_image() for _ in range(4)]
        expected = run_engine(images[0][0], "reference")
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(
                lambda pair: run_engine(pair[0], "jit"), images))
        assert all(result == expected for result in results)
        # All four raced on the same key; exactly one entry survives and a
        # fifth (fresh) run can still load it.
        assert len(cache_entries(jit_cache)) == 1
        follow_up, _ = fresh_image()
        assert run_engine(follow_up, "jit") == expected

    def test_no_jit_env_parity(self, jit_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        image, _ = fresh_image()
        for sim_cls in (FunctionalSimulator, CycleSimulator):
            assert (run_engine(image, "jit", sim_cls)
                    == run_engine(image, "reference", sim_cls))
        assert not cache_entries(jit_cache), \
            "REPRO_NO_JIT must not generate or persist anything"


class TestCodegenKey:
    def test_key_is_content_addressed(self):
        image_a, _ = fresh_image()
        image_b, _ = fresh_image()
        pipeline = PatmosConfig().pipeline
        key_a = decode_image(image_a, pipeline, False, False).codegen_key
        key_b = decode_image(image_b, pipeline, False, False).codegen_key
        assert key_a and key_a == key_b

    def test_key_separates_decode_variants(self):
        image, _ = fresh_image()
        pipeline = PatmosConfig().pipeline
        keys = {decode_image(image, pipeline, strict, trace).codegen_key
                for strict in (False, True) for trace in (False, True)}
        assert len(keys) == 4

    def test_to_dict_carries_key(self):
        image, _ = fresh_image()
        program = decode_image(image, PatmosConfig().pipeline, False, False)
        summary = program.to_dict()
        assert summary["codegen_key"] == program.codegen_key


class TestDumpCli:
    def test_dump_prints_generated_module(self, capsys):
        from repro.sim.codegen.__main__ import main
        assert main(["--dump", "vector_sum"]) == 0
        out = capsys.readouterr().out
        assert "codegen_key" in out
        assert "def make(" in out

    def test_dump_rejects_unknown_kernel(self, capsys):
        from repro.sim.codegen.__main__ import main
        with pytest.raises(SystemExit):
            main(["--dump", "no_such_kernel"])
