"""Workload correctness on both simulators, the FPGA model, CMP and assembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CompileOptions,
    CycleSimulator,
    FunctionalSimulator,
    PatmosConfig,
    assemble,
    compile_and_link,
    disassemble_image,
    disassemble_program,
)
from repro.cmp import CmpSystem, default_tdma_schedule, single_core_reference
from repro.errors import AssemblerError
from repro.hw import (
    CYCLONE_II_LIKE,
    DoubleClockedBramRegisterFile,
    FlipFlopRegisterFile,
    RegisterFilePorts,
    ReplicatedBramRegisterFile,
    VIRTEX5_SPEED2,
    compare_register_files,
    device_by_name,
    estimate_pipeline_timing,
    estimate_resources,
)
from repro.workloads import (
    KERNEL_BUILDERS,
    build_kernel,
    build_vector_sum,
    random_alu_kernel,
)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(KERNEL_BUILDERS))
def test_kernel_matches_reference_on_both_simulators(name, config):
    kernel = build_kernel(name)
    image, _ = compile_and_link(kernel.program, config)
    cycle = CycleSimulator(image, strict=True).run()
    functional = FunctionalSimulator(image, strict=True).run()
    assert cycle.output == kernel.expected_output
    assert functional.output == kernel.expected_output
    assert cycle.halted and functional.halted
    # Timing differs, architectural behaviour does not.
    assert cycle.instructions == functional.instructions


@pytest.mark.parametrize("name", ("vector_sum", "saturate", "call_tree"))
def test_kernels_run_single_issue(name, config):
    kernel = build_kernel(name)
    image, _ = compile_and_link(kernel.program, config,
                                CompileOptions(dual_issue=False))
    result = CycleSimulator(image, strict=True).run()
    assert result.output == kernel.expected_output


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_random_alu_kernels_agree_with_reference(seed):
    kernel = random_alu_kernel(seed, length=30)
    image, _ = compile_and_link(kernel.program, PatmosConfig())
    cycle = CycleSimulator(image, strict=True).run()
    functional = FunctionalSimulator(image, strict=True).run()
    assert cycle.output == kernel.expected_output
    assert functional.output == kernel.expected_output


# ---------------------------------------------------------------------------
# Assembler
# ---------------------------------------------------------------------------


class TestAssembler:
    SOURCE = """
        ; simple summation
        .data values const 1 2 3 4
        .entry main

        .func main
            addl r1 = r0, values
            lil r2 = 4
            lil r3 = 0
        loop:
            lwc r4 = [r1 + 0]
            add r3 = r3, r4
            addi r1 = r1, 4
            subi r2 = r2, 1
            cmpineq p1 = r2, 0
            (p1) br loop
            .loopbound loop 4
            out r3
            halt
    """

    def test_assemble_and_run(self, config):
        program = assemble(self.SOURCE)
        image, _ = compile_and_link(program, config)
        result = CycleSimulator(image, strict=True).run()
        assert result.output == [10]

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblerError) as err:
            assemble(".func main\n    bogus r1 = r2, r3\n")
        assert "line 2" in str(err.value)

    def test_instruction_outside_function_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("add r1 = r2, r3\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".wat main\n")

    def test_bad_data_space_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data x rom 1 2\n")

    @pytest.mark.parametrize("name", ("vector_sum", "saturate", "stack_chain",
                                      "stream_checksum", "mixed_access"))
    def test_disassemble_assemble_round_trip(self, name, config):
        kernel = build_kernel(name)
        text = disassemble_program(kernel.program)
        program = assemble(text)
        image, _ = compile_and_link(program, config)
        result = CycleSimulator(image, strict=True).run()
        assert result.output == kernel.expected_output

    def test_disassemble_image(self, config):
        kernel = build_vector_sum(8)
        image, _ = compile_and_link(kernel.program, config)
        text = disassemble_image(image)
        assert "<main>" in text
        assert "halt" in text


# ---------------------------------------------------------------------------
# CMP / TDMA
# ---------------------------------------------------------------------------


class TestCmp:
    def _images(self, count, config):
        images = []
        for index in range(count):
            kernel = build_kernel("vector_sum", n=16, seed=index + 1)
            image, _ = compile_and_link(kernel.program, config)
            images.append((image, kernel))
        return images

    def test_all_cores_produce_correct_results(self, config):
        pairs = self._images(3, config)
        system = CmpSystem([image for image, _ in pairs], config)
        result = system.run(analyse=True)
        assert result.num_cores == 3
        for core, (_, kernel) in zip(result.cores, pairs):
            assert core.sim.output == kernel.expected_output
            assert core.wcet_cycles >= core.observed_cycles

    def test_tdma_slows_down_but_stays_bounded(self, config):
        pairs = self._images(4, config)
        image = pairs[0][0]
        alone = single_core_reference(image, config)
        system = CmpSystem([img for img, _ in pairs], config)
        shared = system.run(analyse=True)
        core0 = shared.cores[0]
        assert core0.observed_cycles >= alone.observed_cycles
        assert core0.wcet_cycles >= alone.wcet_cycles
        assert core0.observed_cycles <= core0.wcet_cycles

    def test_default_schedule_has_burst_slots(self, config):
        schedule = default_tdma_schedule(4, config)
        assert schedule.num_cores == 4
        assert schedule.slot_cycles == config.memory.burst_cycles()


# ---------------------------------------------------------------------------
# FPGA hardware model (experiment E1 claims)
# ---------------------------------------------------------------------------


class TestHardwareModel:
    def test_tdm_register_file_uses_two_brams(self):
        report = DoubleClockedBramRegisterFile(VIRTEX5_SPEED2).report(
            RegisterFilePorts())
        assert report.block_rams == 2
        assert report.max_system_mhz > 200.0

    def test_replicated_register_file_uses_many_brams(self):
        report = ReplicatedBramRegisterFile(VIRTEX5_SPEED2).report(
            RegisterFilePorts())
        assert report.block_rams == 8

    def test_flip_flop_register_file_is_resource_heavy(self):
        ff = FlipFlopRegisterFile(VIRTEX5_SPEED2).report(RegisterFilePorts())
        tdm = DoubleClockedBramRegisterFile(VIRTEX5_SPEED2).report(
            RegisterFilePorts())
        assert ff.lut_estimate > 5 * tdm.lut_estimate

    def test_pipeline_exceeds_200mhz_with_alu_critical_path(self):
        report = estimate_pipeline_timing(VIRTEX5_SPEED2)
        assert report.max_frequency_mhz > 200.0
        assert report.critical_stage.name == "execute"
        assert "execute" in report.limited_by

    def test_slower_device_is_register_file_or_logic_limited(self):
        report = estimate_pipeline_timing(CYCLONE_II_LIKE)
        assert report.max_frequency_mhz < 200.0

    def test_single_issue_is_not_slower_than_dual_issue(self):
        dual = estimate_pipeline_timing(VIRTEX5_SPEED2, dual_issue=True)
        single = estimate_pipeline_timing(VIRTEX5_SPEED2, dual_issue=False)
        assert single.max_frequency_mhz >= dual.max_frequency_mhz

    def test_compare_register_files_reports_all_variants(self):
        reports = compare_register_files(VIRTEX5_SPEED2)
        names = {report.name for report in reports}
        assert names == {"flip-flop", "replicated-bram", "double-clocked-tdm"}

    def test_resource_report(self, config):
        report = estimate_resources(VIRTEX5_SPEED2, config)
        assert report.register_file_brams == 2
        assert report.total_brams > report.register_file_brams

    def test_device_lookup(self):
        assert device_by_name("Virtex-5 (speed grade -2)") is VIRTEX5_SPEED2
        with pytest.raises(Exception):
            device_by_name("unknown device")

    def test_summary_renders(self):
        report = estimate_pipeline_timing(VIRTEX5_SPEED2)
        text = report.summary()
        assert "f_max" in text and "Virtex-5" in text
