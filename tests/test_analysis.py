"""Tests of the abstract-interpretation value analysis (repro.analysis)."""

import random

import pytest

from repro.analysis import (
    Interval,
    analyse_program,
    lint_program,
    program_facts,
)
from repro.analysis.domain import INT_MAX, TOP
from repro.analysis.lint import has_errors
from repro.analysis.loopbounds import (
    STATUS_ADOPTED,
    STATUS_INFERRED_ONLY,
    STATUS_MATCH,
    STATUS_TIGHTER,
)
from repro.compiler.passes import CompileOptions, compile_and_link
from repro.errors import CompilerError, LoopBoundError, WcetError
from repro.isa.opcodes import Opcode
from repro.program import ControlFlowGraph
from repro.program.builder import ProgramBuilder
from repro.program.program import DataSpace
from repro.sim.cycle import CycleSimulator
from repro.wcet.analyzer import WcetOptions, analyze_wcet
from repro.wcet.ipet import FlowConstraint, longest_path_dag, solve_ipet
from repro.workloads.suite import build_kernel, resolve_kernels


# ---------------------------------------------------------------------------
# Interval domain basics
# ---------------------------------------------------------------------------


class TestIntervalDomain:
    def test_join_and_meet(self):
        a, b = Interval(0, 5), Interval(3, 9)
        assert a.join(b) == Interval(0, 9)
        assert a.meet(b) == Interval(3, 5)

    def test_widen_escapes_growing_bounds(self):
        old, new = Interval(0, 5), Interval(0, 6)
        widened = old.widen(new)
        assert widened.lo == 0
        assert widened.hi == INT_MAX

    def test_arithmetic_saturates_to_top_on_overflow(self):
        huge = Interval(INT_MAX - 1, INT_MAX)
        assert huge.add(Interval(2, 2)).is_top

    def test_top_absorbs(self):
        assert TOP.add(Interval(1, 1)).is_top
        assert Interval(1, 2).join(TOP).is_top


# ---------------------------------------------------------------------------
# Property test: transfer functions are sound w.r.t. the real simulator
# ---------------------------------------------------------------------------


def _random_program(seed: int) -> ProgramBuilder:
    """A random branchy straight-line program over r1..r7 with OUT probes."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"prop_{seed}")
    words = [rng.randrange(-100, 100) & 0xFFFF_FFFF for _ in range(4)]
    b.data("vals", words, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "vals")
    for reg in range(2, 6):
        f.li(f"r{reg}", rng.randrange(-64, 64))
    f.emit("lwc", "r6", "r1", 4 * rng.randrange(4))
    # A data-dependent diamond: the join state carries a genuine interval.
    f.emit("cmpilt", "p1", "r6", 0)
    f.br("neg", pred="p1")
    f.li("r7", rng.randrange(0, 50))
    f.br("join")
    f.label("neg")
    f.li("r7", rng.randrange(-50, -1))
    f.label("join")
    ops = ["add", "sub", "and", "or", "xor", "shl", "sra", "shadd"]
    for _ in range(12):
        f.emit(rng.choice(ops), f"r{rng.randrange(2, 8)}",
               f"r{rng.randrange(2, 8)}", f"r{rng.randrange(2, 8)}")
    for reg in range(2, 8):
        f.out(f"r{reg}")
    f.halt()
    return b


@pytest.mark.parametrize("seed", range(25))
def test_transfer_functions_contain_concrete_execution(seed):
    """Every concrete register value observed by OUT lies in its abstract
    value's interval — the soundness property of the whole transfer layer,
    checked against the real compiled program on the real simulator."""
    image, _ = compile_and_link(_random_program(seed).build())
    sim = CycleSimulator(image).run()
    facts = analyse_program(image.program)
    func_facts = facts.functions["main"]
    abstract = []
    for label in func_facts.cfg.topological_order():
        for instr, state in func_facts.fixpoint.block_states(label):
            if instr.opcode is Opcode.OUT:
                abstract.append(state.gpr(instr.rs1))
    assert len(abstract) == len(sim.output)
    for concrete, absval in zip(sim.output, abstract):
        if absval.base is not None or absval.offset.is_top:
            continue  # symbolic or unbounded: trivially contains
        assert absval.offset.lo <= concrete <= absval.offset.hi, (
            f"seed {seed}: concrete {concrete} outside "
            f"[{absval.offset.lo}, {absval.offset.hi}]")


# ---------------------------------------------------------------------------
# Property test: ILP solver agrees with the DAG longest path
# ---------------------------------------------------------------------------


def _random_dag_function(seed: int):
    """A random loop-free CFG: a chain of diamonds with random costs."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"dag_{seed}")
    f = b.function("main")
    f.li("r1", 1)
    diamonds = rng.randrange(1, 4)
    for d in range(diamonds):
        f.emit("cmpilt", "p1", "r1", rng.randrange(-5, 5))
        f.br(f"left_{d}", pred="p1")
        for _ in range(rng.randrange(1, 5)):
            f.emit("addi", "r2", "r2", 1)
        f.br(f"tail_{d}")
        f.label(f"left_{d}")
        for _ in range(rng.randrange(1, 5)):
            f.emit("addi", "r3", "r3", 1)
        f.label(f"tail_{d}")
        f.emit("addi", "r4", "r4", 1)
    f.halt()
    program = b.build()
    cfg = ControlFlowGraph.build(program.functions["main"])
    costs = {label: rng.randrange(1, 40) for label in
             program.functions["main"].block_labels()}
    return cfg, costs


@pytest.mark.parametrize("seed", range(15))
def test_solve_ipet_matches_longest_path_on_dags(seed):
    cfg, costs = _random_dag_function(seed)
    assert solve_ipet(cfg, costs).wcet == longest_path_dag(cfg, costs)


# ---------------------------------------------------------------------------
# Loop-bound inference and the audit rule
# ---------------------------------------------------------------------------


def _counted_loop(bound_annotation=None, *, start=0, limit=10, step=1):
    b = ProgramBuilder("loops")
    f = b.function("main")
    f.li("r1", start)
    f.li("r2", limit)
    f.label("loop")
    f.emit("addi", "r3", "r3", 1)
    f.emit("addi", "r1", "r1", step)
    f.emit("cmplt", "p1", "r1", "r2")
    f.br("loop", pred="p1")
    if bound_annotation is not None:
        f.loop_bound("loop", bound_annotation)
    f.out("r3")
    f.halt()
    return b.build()


def _facts_of(program):
    return analyse_program(program).functions["main"]


class TestLoopBoundInference:
    def test_infers_lt_loop_bound(self):
        facts = _facts_of(_counted_loop(start=0, limit=10, step=1))
        [audit] = facts.audits
        assert audit.inferred == 10
        assert audit.status == STATUS_INFERRED_ONLY
        assert audit.effective == 10

    def test_infers_with_larger_step(self):
        facts = _facts_of(_counted_loop(start=0, limit=10, step=3))
        [audit] = facts.audits
        assert audit.inferred == 4  # ceil(10/3)

    def test_matching_annotation_audits_as_match(self):
        facts = _facts_of(_counted_loop(bound_annotation=10))
        [audit] = facts.audits
        assert audit.status == STATUS_MATCH
        assert audit.effective == 10

    def test_loose_annotation_is_tightened(self):
        facts = _facts_of(_counted_loop(bound_annotation=50))
        [audit] = facts.audits
        assert audit.status == STATUS_ADOPTED
        assert audit.effective == 10

    def test_tight_annotation_is_flagged_not_adopted(self):
        facts = _facts_of(_counted_loop(bound_annotation=3))
        [audit] = facts.audits
        assert audit.status == STATUS_TIGHTER
        assert audit.effective == 3  # annotation kept, but flagged

    def test_suite_loops_all_infer_exactly(self):
        """Every loop of every workload kernel infers a bound equal to its
        annotation — the coverage claim behind the annotation-free gate."""
        for name in resolve_kernels(["all"]):
            kernel = build_kernel(name)
            for audit in analyse_program(kernel.program).loop_audits():
                assert audit.status == STATUS_MATCH, (
                    f"{name}/{audit.header}: {audit.status}")

    def test_analysis_bounds_suite_without_annotations(self):
        """Kernels stay analysable with every manual annotation deleted."""
        for name in resolve_kernels(["performance"]):
            kernel = build_kernel(name)
            for function in kernel.program.functions.values():
                for block in function.blocks:
                    block.loop_bound = None
            image, _ = compile_and_link(kernel.program)
            annotated = build_kernel(name)
            image_ref, _ = compile_and_link(annotated.program)
            stripped = analyze_wcet(image).wcet_cycles
            reference = analyze_wcet(image_ref).wcet_cycles
            assert stripped == reference

    def test_bare_ipet_still_requires_bounds(self):
        """Inference is wired through the analyzer only: bare solve_ipet on
        an unannotated loop must keep failing loudly."""
        program = _counted_loop()
        cfg = ControlFlowGraph.build(program.functions["main"])
        costs = {label: 1 for label in program.functions["main"].block_labels()}
        with pytest.raises(WcetError, match="no bound annotation"):
            solve_ipet(cfg, costs)


# ---------------------------------------------------------------------------
# Infeasible paths
# ---------------------------------------------------------------------------


class TestInfeasiblePaths:
    def _dead_branch_program(self):
        b = ProgramBuilder("dead")
        f = b.function("main")
        f.li("r1", 5)
        f.emit("cmpilt", "p1", "r1", 0)  # 5 < 0: statically false
        f.br("never", pred="p1")
        f.emit("addi", "r2", "r2", 1)
        f.br("end")
        f.label("never")
        for _ in range(64):
            f.emit("addi", "r3", "r3", 1)
        f.label("end")
        f.halt()
        return b.build()

    def test_dead_edge_detected_and_prunes_wcet(self):
        program = self._dead_branch_program()
        facts = _facts_of(program)
        kinds = [fact.kind for fact in facts.infeasible]
        assert "dead_edge" in kinds
        cfg = facts.cfg
        costs = {label: 1 for label in cfg.function.block_labels()}
        costs["never"] = 1000
        plain = solve_ipet(cfg, costs).wcet
        pruned = solve_ipet(cfg, costs,
                            flow_constraints=facts.flow_constraints()).wcet
        assert pruned < plain

    def test_flow_constraint_terms_for_missing_edges_are_dropped(self):
        program = self._dead_branch_program()
        cfg = ControlFlowGraph.build(program.functions["main"])
        costs = {label: 1 for label in cfg.function.block_labels()}
        ghost = FlowConstraint(terms=((("nope", "nada"), 1.0),), upper=0.0)
        assert solve_ipet(cfg, costs, flow_constraints=[ghost]).wcet \
            == solve_ipet(cfg, costs).wcet

    def test_exclusive_pair_constrains_correlated_branches(self):
        b = ProgramBuilder("corr")
        f = b.function("main")
        f.emit("lwc", "r1", "r0", 0)
        f.emit("cmpilt", "p1", "r1", 0)
        f.br("a_neg", pred="p1")
        f.emit("addi", "r2", "r2", 1)
        f.br("second")
        f.label("a_neg")
        for _ in range(32):
            f.emit("addi", "r3", "r3", 1)
        f.label("second")
        f.br("b_neg", pred="p1")
        f.emit("addi", "r4", "r4", 1)
        f.br("end")
        f.label("b_neg")
        for _ in range(32):
            f.emit("addi", "r5", "r5", 1)
        f.label("end")
        f.halt()
        b.data("src", [0], space=DataSpace.CONST)
        program = b.build()
        facts = _facts_of(program)
        assert any(fact.kind == "exclusive_pair" for fact in facts.infeasible)
        # The contradictory combination (taken once, fallen once) is cut:
        # with the constraints, the solver cannot take a_neg and skip b_neg.
        cfg = facts.cfg
        costs = {label: 1 for label in cfg.function.block_labels()}
        costs["a_neg"] = 500
        costs["b_neg"] = 300
        plain = solve_ipet(cfg, costs).wcet
        pruned = solve_ipet(cfg, costs,
                            flow_constraints=facts.flow_constraints()).wcet
        assert pruned == plain  # consistent worst case is still feasible
        # ...but forcing the cheap path through one branch caps the other.
        costs["b_neg"] = 1
        costs["a_neg"] = 500
        inconsistent = [
            FlowConstraint(terms=(
                (("second", "b_neg"), 1.0),), upper=0.0)]
        capped = solve_ipet(
            cfg, costs,
            flow_constraints=facts.flow_constraints() + inconsistent).wcet
        assert capped < solve_ipet(cfg, costs,
                                   flow_constraints=inconsistent).wcet


# ---------------------------------------------------------------------------
# Address analysis
# ---------------------------------------------------------------------------


class TestAddressAnalysis:
    def _access_program(self, offset=0):
        b = ProgramBuilder("addr")
        b.data("table", [1, 2, 3, 4], space=DataSpace.CONST)
        f = b.function("main")
        f.li("r1", "table")
        f.emit("lwc", "r2", "r1", offset)
        f.out("r2")
        f.halt()
        return b.build()

    def test_access_resolves_symbol_and_bounds(self):
        facts = _facts_of(self._access_program())
        [access] = [fact for fact in facts.accesses if not fact.is_store]
        assert access.symbol == "table"
        assert access.region == "static"
        assert access.in_bounds is True

    def test_out_of_bounds_access_is_flagged(self):
        facts = _facts_of(self._access_program(offset=64))
        [access] = [fact for fact in facts.accesses if not fact.is_store]
        assert access.in_bounds is False

    def test_accessed_static_items_restrict_persistence(self):
        program = self._access_program()
        facts = analyse_program(program)
        assert facts.accessed_static_items() == {"table"}


# ---------------------------------------------------------------------------
# Lint pass
# ---------------------------------------------------------------------------


class TestLint:
    def test_clean_program_has_no_findings(self):
        program = _counted_loop(bound_annotation=10)
        assert lint_program(program) == []

    def test_unbounded_loop_without_inference_is_an_error(self):
        b = ProgramBuilder("unbounded")
        b.data("src", [7], space=DataSpace.CONST)
        f = b.function("main")
        f.label("loop")
        f.emit("lwc", "r1", "r2", 0)  # data-dependent continue condition
        f.emit("cmpineq", "p1", "r1", 0)
        f.br("loop", pred="p1")
        f.halt()
        findings = lint_program(b.build())
        assert any(f.code == "unbounded-loop" and f.severity == "error"
                   for f in findings)
        assert has_errors(findings)

    def test_unreachable_block_is_flagged(self):
        b = ProgramBuilder("unreach")
        f = b.function("main")
        f.li("r1", 1)
        f.br("end")
        f.label("island")
        f.emit("addi", "r2", "r2", 1)
        f.br("end")
        f.label("end")
        f.halt()
        findings = lint_program(b.build())
        assert any(f.code == "unreachable-block" and f.block == "island"
                   for f in findings)

    def test_reserved_register_write_is_flagged(self):
        b = ProgramBuilder("reserved")
        f = b.function("main")
        f.li("r26", 1)  # single-path counter register
        f.halt()
        findings = lint_program(b.build())
        assert any(f.code == "reserved-register-write" for f in findings)

    def test_strict_escalates_loose_annotations(self):
        program = _counted_loop(bound_annotation=3)  # tighter than provable
        findings = lint_program(program)
        assert any(f.code == "loose-annotation" for f in findings)
        assert not has_errors(findings)
        assert has_errors(findings, strict=True)

    def test_single_path_property_enforced_on_compiled_kernels(self):
        kernel = build_kernel("saturate")
        image, _ = compile_and_link(
            kernel.program, options=CompileOptions(single_path=True,
                                                   if_convert=False))
        findings = lint_program(image.program, single_path=True,
                                check_reserved=False)
        assert not any(f.code == "single-path-violation" for f in findings)

    def test_data_dependent_branch_violates_single_path(self):
        program = self._branchy_program()
        findings = lint_program(program, single_path=True,
                                check_reserved=False)
        assert any(f.code == "single-path-violation" for f in findings)

    @staticmethod
    def _branchy_program():
        b = ProgramBuilder("branchy")
        b.data("src", [3], space=DataSpace.CONST)
        f = b.function("main")
        f.li("r1", "src")
        f.emit("lwc", "r2", "r1", 0)
        f.emit("cmpilt", "p1", "r2", 0)
        f.br("neg", pred="p1")
        f.li("r3", 1)
        f.br("end")
        f.label("neg")
        f.li("r3", 2)
        f.label("end")
        f.out("r3")
        f.halt()
        return b.build()

    def test_full_suite_is_lint_clean(self):
        for name in resolve_kernels(["all"]):
            kernel = build_kernel(name)
            findings = lint_program(kernel.program)
            assert not has_errors(findings, strict=True), (
                f"{name}: {[str(f) for f in findings]}")


# ---------------------------------------------------------------------------
# Builder loop-bound error (structured)
# ---------------------------------------------------------------------------


class TestLoopBoundError:
    def test_unknown_label_raises_structured_error(self):
        b = ProgramBuilder("bad")
        f = b.function("main")
        f.li("r1", 1)
        f.loop_bound("no_such_label", 4)
        f.halt()
        with pytest.raises(LoopBoundError) as excinfo:
            b.build()
        assert excinfo.value.function == "main"
        assert excinfo.value.label == "no_such_label"
        assert isinstance(excinfo.value, CompilerError)

    def test_known_label_still_annotates(self):
        program = _counted_loop(bound_annotation=10)
        assert program.functions["main"].loop_bounds() == {"loop": 10}


# ---------------------------------------------------------------------------
# Analyzer integration
# ---------------------------------------------------------------------------


class TestAnalyzerIntegration:
    def test_analysis_toggle_in_options_dict(self):
        assert WcetOptions().to_dict()["analysis"] is True
        assert WcetOptions(analysis=False).to_dict()["analysis"] is False

    def test_analysis_never_loosens_suite_bounds(self):
        for name in resolve_kernels(["performance"]):
            kernel = build_kernel(name)
            image, _ = compile_and_link(kernel.program)
            on = analyze_wcet(image, options=WcetOptions(analysis=True))
            off = analyze_wcet(image, options=WcetOptions(analysis=False))
            assert on.wcet_cycles <= off.wcet_cycles
            assert on.loop_audits and not off.loop_audits

    def test_explicit_override_beats_inferred_bound(self):
        program = _counted_loop()
        image, _ = compile_and_link(program)
        inferred = analyze_wcet(image).wcet_cycles
        forced = analyze_wcet(image, options=WcetOptions(
            loop_bounds={("main", "loop"): 40})).wcet_cycles
        assert forced > inferred

    def test_facts_cache_is_shared_per_program(self):
        kernel = build_kernel("vector_sum")
        assert program_facts(kernel.program) is program_facts(kernel.program)
