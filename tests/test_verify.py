"""Tests of the WCET soundness conformance subsystem (repro.verify).

Two layers: the harness mechanics (matrix expansion, per-core outcomes,
violation detection, report/CLI plumbing) and soundness *as a property* —
seeded-random synthetic programs checked ``wcet >= simulated`` across the
cache-mode and arbiter axes, so a regression in either the analyzer or the
simulator trips the property rather than a hand-picked example.
"""

import dataclasses
import json
from dataclasses import fields

import pytest

from repro import PatmosConfig, compile_and_link
from repro.cmp import MulticoreSystem
from repro.errors import VerificationError, WcetError
from repro.memory import TdmaSchedule
from repro.sim.cycle import CycleSimulator
from repro.verify import (
    DEFAULT_ARBITERS,
    DEFAULT_VARIANTS,
    ArbiterConfig,
    CacheModelVariant,
    ConformanceHarness,
    ConformanceReport,
    Scenario,
    ScenarioOutcome,
    build_scenarios,
    run_conformance,
)
from repro.verify.cli import main
from repro.wcet import WcetOptions, analyze_wcet
from repro.workloads.synthetic import random_alu_kernel

CONFIG = PatmosConfig()

#: A fast sub-matrix used by the harness-mechanics tests.
FAST_ARBITERS = tuple(a for a in DEFAULT_ARBITERS
                      if a.name in ("single", "tdma2", "priority2"))


class TestScenarioMatrix:
    def test_full_matrix_is_crossed(self):
        scenarios = build_scenarios(["vector_sum", "fir_filter"])
        assert len(scenarios) == 2 * len(DEFAULT_VARIANTS) * len(DEFAULT_ARBITERS)
        labels = {scenario.label() for scenario in scenarios}
        assert len(labels) == len(scenarios)

    def test_suite_names_resolve(self):
        scenarios = build_scenarios(["performance"],
                                    arbiters=FAST_ARBITERS[:1])
        assert {s.kernel for s in scenarios} >= {"vector_sum", "matmul"}

    def test_weighted_tdma_schedule(self):
        weighted = next(a for a in DEFAULT_ARBITERS if a.slot_weights)
        schedule = weighted.schedule(CONFIG)
        assert schedule.num_cores == weighted.cores
        assert schedule.slot_weights == weighted.slot_weights
        # Non-TDMA configs have no schedule.
        rr = next(a for a in DEFAULT_ARBITERS if a.kind == "round_robin")
        assert rr.schedule(CONFIG) is None


class TestHarness:
    @pytest.fixture(scope="class")
    def report(self):
        return run_conformance(kernels=["vector_sum", "stack_chain"],
                               arbiters=FAST_ARBITERS, rtos_scenarios=())

    def test_zero_violations(self, report):
        assert report.violations() == []
        assert all(outcome.tightness >= 1.0 for outcome in report.bounded())

    def test_priority_non_top_core_unbounded(self, report):
        unbounded = report.unbounded()
        assert unbounded, "priority scenarios must record unbounded cores"
        assert all(outcome.arbiter == "priority2" and outcome.core_id != 0
                   for outcome in unbounded)
        assert all(outcome.sound is None for outcome in unbounded)

    def test_every_core_of_every_scenario_reported(self, report):
        expected = sum(arbiter.cores for arbiter in FAST_ARBITERS)
        assert len(report.outcomes) == 2 * len(DEFAULT_VARIANTS) * expected

    def test_report_serialization(self, report):
        payload = report.to_dict()
        assert payload["schema"] == "repro.verify/v2"
        assert payload["summary"]["violations"] == 0
        assert payload["summary"]["checked"] == len(report.outcomes)
        assert payload["summary"]["loops_checked"] == len(report.loop_checks)
        assert payload["summary"]["loop_violations"] == 0
        json.dumps(payload)  # JSON-serializable end to end
        assert "bound/obs" in report.table()
        assert "0 soundness violations" in report.summary()

    def test_engine_choice_does_not_change_the_report(self, tmp_path,
                                                      monkeypatch):
        """The conformance verdicts are engine-independent: the jit-run
        matrix must reproduce the fast-engine report outcome for outcome."""
        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path / "jit"))
        reports = [run_conformance(kernels=["vector_sum"],
                                   arbiters=FAST_ARBITERS,
                                   rtos_scenarios=(), engine=engine)
                   for engine in ("fast", "jit")]
        fast, jit = [[outcome.to_dict() for outcome in report.outcomes]
                     for report in reports]
        assert fast == jit

    def test_simulations_shared_across_analysis_variants(self):
        harness = ConformanceHarness(config=CONFIG)
        default, naive = (
            harness.run_scenario(Scenario("stack_chain", variant,
                                          FAST_ARBITERS[0]))
            for variant in (CacheModelVariant("default"),
                            CacheModelVariant(
                                "stack_naive",
                                wcet_overrides=(("stack_cache", "naive"),))))
        # One simulation (same hardware), two analyses: observations equal,
        # the naive stack bound at least as loose.
        assert default[0].cycles == naive[0].cycles
        assert naive[0].wcet_cycles >= default[0].wcet_cycles
        assert len(harness._sims) == 1

    def test_simulations_not_shared_across_arbiter_geometries(self):
        """Two arbiter configs sharing a display name must not reuse each
        other's simulation (the memo is keyed by config value, not name)."""
        harness = ConformanceHarness(config=CONFIG)
        narrow = ArbiterConfig("tdma2", kind="tdma", cores=2)
        wide = ArbiterConfig("tdma2", kind="tdma", cores=2,
                             slot_cycles=4 * CONFIG.memory.burst_cycles())
        variant = CacheModelVariant("default")
        first = harness.run_scenario(Scenario("stream_checksum", variant,
                                              narrow))
        second = harness.run_scenario(Scenario("stream_checksum", variant,
                                               wide))
        assert len(harness._sims) == 2
        # Different slot geometry, different observed timing.
        assert ([o.cycles for o in first] != [o.cycles for o in second])

    def test_functional_mismatch_raises(self):
        harness = ConformanceHarness(config=CONFIG)
        harness._image("vector_sum")
        harness._expected["vector_sum"] = [-1]  # sabotage the reference
        with pytest.raises(VerificationError, match="functional mismatch"):
            harness.run_scenario(Scenario("vector_sum",
                                          CacheModelVariant("default"),
                                          FAST_ARBITERS[0]))

    def test_violation_detection(self):
        outcome = ScenarioOutcome(kernel="k", variant="v", arbiter="a",
                                  cores=1, core_id=0, cycles=100,
                                  wcet_cycles=99)
        report = ConformanceReport(outcomes=[outcome])
        assert outcome.sound is False
        assert report.violations() == [outcome]
        assert "VIOLATION" in report.summary()


class TestCli:
    def test_json_report_and_exit_code(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main(["--kernels", "vector_sum", "--arbiters", "single,tdma2",
                     "--quiet", "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["summary"]["violations"] == 0
        assert "soundness violations" in capsys.readouterr().out

    def test_unknown_selection_rejected(self, capsys):
        assert main(["--arbiters", "fifo"]) == 2
        assert "unknown arbiter" in capsys.readouterr().err

    def test_unknown_kernel_rejected_cleanly(self, capsys):
        assert main(["--kernels", "no_such_kernel"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown kernel")

    def test_empty_kernel_selection_rejected(self, capsys):
        """The gate must never pass vacuously on an empty matrix."""
        assert main(["--kernels", ","]) == 2
        assert "no kernels selected" in capsys.readouterr().err

    def test_invalid_jobs_rejected(self, capsys):
        assert main(["--kernels", "vector_sum", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestParallelMatrix:
    def test_parallel_report_identical_to_sequential(self):
        """--jobs fan-out must not change the report, only its wall-clock.

        Outcomes are compared field by field in order; only the measured
        ``elapsed_s`` (inherently non-deterministic, even between two
        sequential runs) is excluded.
        """
        kwargs = dict(kernels=["vector_sum", "saturate", "stack_chain"],
                      rtos_scenarios=())
        sequential = run_conformance(**kwargs)
        parallel = run_conformance(jobs=3, **kwargs)
        sequential_dict = sequential.to_dict()
        parallel_dict = parallel.to_dict()
        sequential_dict["summary"].pop("elapsed_s")
        parallel_dict["summary"].pop("elapsed_s")
        assert parallel_dict == sequential_dict

    def test_parallel_progress_covers_every_scenario(self):
        lines: list[str] = []
        report = run_conformance(kernels=["vector_sum"], jobs=2,
                                 rtos_scenarios=(),
                                 progress=lines.append)
        scenarios = {(o.kernel, o.variant, o.arbiter)
                     for o in report.outcomes}
        # One line per scenario plus one loop-bound line per kernel.
        assert len(lines) == len(build_scenarios(["vector_sum"])) + 1
        assert len(scenarios) == len(lines) - 1
        assert any("loop bounds" in line for line in lines)

    def test_jobs_must_be_positive(self):
        with pytest.raises(VerificationError):
            run_conformance(kernels=["vector_sum"], jobs=0)

    def test_killed_worker_contained_as_failed_cell(self, monkeypatch):
        """A worker dying mid-group must not abort the parallel matrix.

        The poisoned group (icache × tdma4w) kills every worker that
        touches it; it must end up as a structured FailedCell while every
        other group's outcomes still arrive, and the incomplete report
        must fail the gate even though no *checked* bound was violated.
        """
        import os
        import signal

        from repro.verify import harness as harness_module

        real = harness_module._run_scenario_group

        def die_on_target(group):
            if any(s.variant.hardware == "icache"
                   and s.arbiter.name == "tdma4w" for s in group):
                os.kill(os.getpid(), signal.SIGKILL)
            return real(group)
        # Forked pool workers call through _group_worker and inherit this.
        monkeypatch.setattr(harness_module, "_run_scenario_group",
                            die_on_target)
        monkeypatch.setattr(harness_module, "_RETRY_BACKOFF_S", 0.0)

        report = run_conformance(kernels=["vector_sum"], jobs=2,
                                 rtos_scenarios=())
        assert len(report.failures) == 1
        cell = report.failures[0]
        assert cell.error == "WorkerCrashed"
        assert cell.attempts == 1 + harness_module._MAX_GROUP_RETRIES
        assert cell.context["scenarios"]  # which scenarios went missing
        # Every other group completed; only the poisoned one is absent.
        assert not any(o.variant == "conventional_icache"
                       and o.arbiter == "tdma4w" for o in report.outcomes)
        others = run_conformance(kernels=["vector_sum"], rtos_scenarios=())
        missing = sum(1 for o in others.outcomes
                      if o.variant == "conventional_icache"
                      and o.arbiter == "tdma4w")
        assert missing > 0
        assert len(report.outcomes) == len(others.outcomes) - missing
        assert report.to_dict()["summary"]["failed_cells"] == 1
        assert not report.violations()


#: WCET option variants of the property test (the cache-mode axis).
PROPERTY_VARIANTS = [
    {},
    {"method_cache": "always_miss"},
    {"stack_cache": "naive"},
    {"conventional_icache": True},
    {"unified_data_cache": True},
]


class TestSoundnessProperty:
    """wcet >= simulated for seeded-random programs across the axes."""

    @pytest.mark.parametrize("seed", [7, 23, 91])
    def test_synthetic_sound_across_cache_modes(self, seed):
        kernel = random_alu_kernel(seed, length=60)
        image, _ = compile_and_link(kernel.program, CONFIG)
        observed = CycleSimulator(image, config=CONFIG, strict=True).run()
        assert observed.output == kernel.expected_output
        for overrides in PROPERTY_VARIANTS:
            result = analyze_wcet(image, CONFIG,
                                  options=WcetOptions(**overrides))
            assert result.wcet_cycles >= observed.cycles, overrides

    @pytest.mark.parametrize("seed", [7, 23])
    def test_synthetic_sound_across_arbiters(self, seed):
        kernel = random_alu_kernel(seed, length=50)
        image, _ = compile_and_link(kernel.program, CONFIG)
        for arbiter in ("tdma", "round_robin", "priority"):
            system = MulticoreSystem([image] * 2, CONFIG, arbiter=arbiter,
                                     mode="cosim")
            result = system.run(analyse=True, strict=True)
            for core in result.cores:
                if core.wcet is None:
                    assert arbiter == "priority" and core.core_id != 0
                    continue
                assert core.wcet_cycles >= core.observed_cycles, (
                    seed, arbiter, core.core_id)

    def test_baseline_hierarchy_analysed_consistently(self):
        """Regression: run(analyse=True) on a system simulating a baseline
        cache organisation must analyse that same organisation — with the
        unified D$ simulated but the split-cache analysis applied, the
        reported bound fell below the observed cycles of its own run."""
        from repro.caches.hierarchy import HierarchyOptions
        from repro.workloads import build_kernel
        image, _ = compile_and_link(build_kernel("stack_chain").program,
                                    CONFIG)
        for hierarchy in (HierarchyOptions(unified_data_cache=True),
                          HierarchyOptions(conventional_icache=True)):
            system = MulticoreSystem([image] * 2, CONFIG, arbiter="tdma",
                                     mode="cosim",
                                     hierarchy_options=hierarchy)
            result = system.run(analyse=True, strict=True)
            for core in result.cores:
                assert core.wcet_cycles >= core.observed_cycles, hierarchy
        # The implied fields are reflected in the options themselves.
        system = MulticoreSystem(
            [image] * 2, CONFIG, mode="cosim",
            hierarchy_options=HierarchyOptions(unified_data_cache=True))
        assert system.wcet_options_for_core(0).unified_data_cache

    def test_weighted_tdma_cosim_sound_per_core(self):
        kernel = random_alu_kernel(5, length=40)
        image, _ = compile_and_link(kernel.program, CONFIG)
        schedule = TdmaSchedule(num_cores=3,
                                slot_cycles=CONFIG.memory.burst_cycles(),
                                slot_weights=(1, 3, 2))
        system = MulticoreSystem([image] * 3, CONFIG, schedule=schedule,
                                 mode="cosim")
        result = system.run(analyse=True, strict=True)
        for core in result.cores:
            assert core.wcet_cycles >= core.observed_cycles


class TestRefinedTdmaBound:
    """The core-aware interference model: tighter yet still sound."""

    @pytest.fixture(scope="class")
    def image(self):
        from repro.workloads import build_kernel
        image, _ = compile_and_link(build_kernel("stream_checksum").program,
                                    CONFIG)
        return image

    def test_refined_tighter_than_blanket_on_weighted_schedule(self, image):
        burst = CONFIG.memory.burst_cycles()
        # Slot exactly one burst: a weight-1 core's refined bound degenerates
        # to the blanket period - 1 (every transfer is a whole burst), while
        # the weighted core's stays strictly tighter.
        tight = TdmaSchedule(num_cores=4, slot_cycles=burst,
                             slot_weights=(1, 2, 1, 1))
        blanket = analyze_wcet(image, CONFIG, options=WcetOptions(tdma=tight))
        bounds = [analyze_wcet(image, CONFIG,
                               options=WcetOptions(tdma=tight,
                                                   tdma_core_id=core))
                  .wcet_cycles for core in range(4)]
        assert all(bound <= blanket.wcet_cycles for bound in bounds)
        assert bounds[1] < blanket.wcet_cycles
        # With head-room in the slot every core's bound tightens strictly.
        roomy = TdmaSchedule(num_cores=4, slot_cycles=2 * burst,
                             slot_weights=(1, 2, 1, 1))
        blanket = analyze_wcet(image, CONFIG, options=WcetOptions(tdma=roomy))
        for core in range(4):
            refined = analyze_wcet(
                image, CONFIG,
                options=WcetOptions(tdma=roomy, tdma_core_id=core))
            assert refined.wcet_cycles < blanket.wcet_cycles, core

    def test_refined_bound_still_covers_cosim(self, image):
        schedule = TdmaSchedule(num_cores=2,
                                slot_cycles=CONFIG.memory.burst_cycles(),
                                slot_weights=(1, 2))
        system = MulticoreSystem([image] * 2, CONFIG, schedule=schedule,
                                 mode="cosim")
        result = system.run(analyse=True, strict=True)
        for core in result.cores:
            assert core.wcet.options.tdma_core_id == core.core_id
            assert core.wcet_cycles >= core.observed_cycles

    def test_out_of_range_core_rejected(self, image):
        schedule = TdmaSchedule(num_cores=2, slot_cycles=28)
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            analyze_wcet(image, CONFIG,
                         options=WcetOptions(tdma=schedule, tdma_core_id=5))

    def test_unschedulable_transfer_rejected(self, image):
        # A slot shorter than one burst can never fit a burst transfer: the
        # refined analysis must refuse rather than emit a meaningless bound.
        schedule = TdmaSchedule(num_cores=2, slot_cycles=5)
        with pytest.raises(WcetError, match="cannot fit"):
            analyze_wcet(image, CONFIG,
                         options=WcetOptions(tdma=schedule, tdma_core_id=0))


class TestOptionsCacheKeyAudit:
    def test_to_dict_covers_every_field(self):
        """Every WcetOptions field must appear in the serialized cache key,
        so the explore result cache can never serve a stale bound across an
        option change (the regression this PR fixes for tdma_core_id)."""
        options = WcetOptions()
        assert set(options.to_dict()) == {f.name for f in fields(options)}

    def test_core_id_changes_the_key(self):
        schedule = TdmaSchedule(num_cores=2, slot_cycles=28)
        base = WcetOptions(tdma=schedule)
        refined = dataclasses.replace(base, tdma_core_id=1)
        assert base.to_dict() != refined.to_dict()

    def test_for_arbiter_plumbs_core_id(self):
        schedule = TdmaSchedule(num_cores=2, slot_cycles=28)
        options = WcetOptions.for_arbiter("tdma", 2, schedule=schedule,
                                          core_id=1)
        assert options.tdma_core_id == 1
        # Explicit overrides win over the plumbed core id.
        overridden = WcetOptions.for_arbiter("tdma", 2, schedule=schedule,
                                             core_id=1, tdma_core_id=None)
        assert overridden.tdma_core_id is None
        # Single-core systems never carry interference options.
        assert WcetOptions.for_arbiter("tdma", 1).tdma is None
