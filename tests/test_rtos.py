"""RTOS layer: interrupts, preemptive task execution, response-time bounds.

The matrix at the heart of this suite checks the two load-bearing claims of
``repro.rtos``:

* **Golden determinism** — an interrupt-laden multi-task co-simulation is
  bit-identical between the event-driven and the quantum-polling reference
  schedulers (and between the fast engine and the reference interpreter),
  for every arbiter and task-scheduling policy.
* **Response-time soundness** — every observed response time stays within
  the end-to-end analytical bound (fixed-priority RTA / the TDMA-slot
  cyclic analogue on top of arbiter-aware per-task WCETs), across seeded
  random task sets.
"""

import pytest

from repro import PatmosConfig
from repro.errors import RtosError
from repro.rtos import (
    RtosOptions,
    RtosSystem,
    TaskSet,
    TaskTiming,
    build_timeline,
    fp_response_times,
    synthesize_tasksets,
    task_from_kernel,
    tdma_slot_response_times,
)
from repro.workloads import build_kernel
from repro.workloads.suite import SUITES

CONFIG = PatmosConfig()


@pytest.fixture(scope="module")
def tasksets_by_seed():
    """Synthesized 2-core task sets, cached per seed (compilation + WCET
    dominate; every test run reuses the same frozen task sets)."""
    cache = {}

    def get(seed, tasks_per_core=3, **kwargs):
        key = (seed, tasks_per_core, tuple(sorted(kwargs.items())))
        if key not in cache:
            cache[key] = synthesize_tasksets(
                2, tasks_per_core, seed=seed, **kwargs)
        return cache[key]

    return get


# ---------------------------------------------------------------------------
# Task model
# ---------------------------------------------------------------------------


class TestTaskModel:
    def test_implicit_deadline_equals_period(self):
        task = task_from_kernel(build_kernel("crc_step"), period=500,
                                priority=0)
        assert task.deadline == 500
        assert task.expected_output  # kernel reference output attached

    def test_validation_errors(self):
        kernel = build_kernel("crc_step")
        with pytest.raises(RtosError):
            task_from_kernel(kernel, period=0, priority=0)
        with pytest.raises(RtosError):
            task_from_kernel(kernel, period=10, priority=0, kind="aperiodic")
        with pytest.raises(RtosError):
            task_from_kernel(kernel, period=10, priority=0, offset=-1)
        task = task_from_kernel(kernel, period=10, priority=0)
        with pytest.raises(RtosError):
            TaskSet((task, task))  # duplicate names
        with pytest.raises(RtosError):
            TaskSet(())

    def test_rate_monotonic_orders_by_period(self):
        kernel = build_kernel("crc_step")
        tasks = tuple(
            task_from_kernel(kernel, period=period, priority=9,
                             name=f"t{i}")
            for i, period in enumerate((700, 300, 500)))
        ranked = TaskSet(tasks).rate_monotonic()
        assert [task.priority for task in ranked.tasks] == [2, 0, 1]

    def test_hyperperiod(self):
        kernel = build_kernel("crc_step")
        tasks = tuple(
            task_from_kernel(kernel, period=period, priority=i,
                             name=f"t{i}")
            for i, period in enumerate((4, 6)))
        assert TaskSet(tasks).hyperperiod() == 12

    def test_options_validation(self):
        with pytest.raises(RtosError):
            RtosOptions(interrupt_entry_cycles=-1)
        with pytest.raises(RtosError):
            RtosOptions(task_slot_cycles=0)
        derived = RtosOptions.for_config(CONFIG)
        assert derived.interrupt_entry_cycles > 0
        assert derived.context_switch_cycles > 0

    def test_synthesize_is_deterministic(self, tasksets_by_seed):
        a = synthesize_tasksets(2, 3, seed=5)
        b = synthesize_tasksets(2, 3, seed=5)
        assert [(t.name, t.period, t.offset, t.kind, t.priority)
                for ts in a for t in ts] == \
               [(t.name, t.period, t.offset, t.kind, t.priority)
                for ts in b for t in ts]

    def test_synthesize_rejects_bad_parameters(self):
        with pytest.raises(RtosError):
            synthesize_tasksets(0, 3)
        with pytest.raises(RtosError):
            synthesize_tasksets(1, 1, utilisation=1.5)
        with pytest.raises(RtosError):
            synthesize_tasksets(1, 1, priority_assignment="lottery")

    def test_rtos_suite_registered(self):
        assert SUITES["rtos"] == ("control_update", "sensor_filter",
                                  "crc_step", "actuator_ramp")


# ---------------------------------------------------------------------------
# Interrupt timelines
# ---------------------------------------------------------------------------


class TestInterrupts:
    def _taskset(self):
        kernel = build_kernel("crc_step")
        timer = task_from_kernel(kernel, period=100, priority=0,
                                 name="timer", offset=10)
        sporadic = task_from_kernel(kernel, period=150, priority=1,
                                    name="io", kind="sporadic", jitter=40)
        return TaskSet((timer, sporadic))

    def test_timer_releases_are_periodic(self):
        timeline = build_timeline(self._taskset(), horizon=450)
        timer = [e.time for e in timeline if e.task_index == 0]
        assert timer == [10, 110, 210, 310, 410]

    def test_sporadic_spacing_at_least_period(self):
        timeline = build_timeline(self._taskset(), horizon=2000, seed=3)
        times = [e.time for e in timeline if e.task_index == 1]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps and all(150 <= gap <= 190 for gap in gaps)

    def test_timeline_sorted_and_deterministic(self):
        a = build_timeline(self._taskset(), horizon=1000, core_id=1, seed=7)
        b = build_timeline(self._taskset(), horizon=1000, core_id=1, seed=7)
        assert a == b
        assert a == sorted(a)
        with pytest.raises(RtosError):
            build_timeline(self._taskset(), horizon=0)


# ---------------------------------------------------------------------------
# Pure response-time analysis
# ---------------------------------------------------------------------------

ZERO_COST = RtosOptions(interrupt_entry_cycles=0, interrupt_exit_cycles=0,
                        context_switch_cycles=0, preemption_reload_cycles=0,
                        task_slot_cycles=50)


class TestResponseTimeAnalysis:
    def test_classical_fp_fixpoint(self):
        # Textbook example with zero overheads/blocking: R0 = 10,
        # R1 = 20 + ceil(R1/50)*10 -> 30, R2 = 40 + 2*10 + 1*20 -> 80.
        timings = [
            TaskTiming("a", period=50, deadline=50, priority=0,
                       wcet_cycles=10),
            TaskTiming("b", period=100, deadline=100, priority=1,
                       wcet_cycles=20),
            TaskTiming("c", period=200, deadline=200, priority=2,
                       wcet_cycles=40),
        ]
        assert fp_response_times(timings, ZERO_COST, 0) == [10, 30, 80]

    def test_fp_overheads_increase_bounds(self):
        timings = [TaskTiming("a", period=500, deadline=500, priority=0,
                              wcet_cycles=100)]
        cheap = fp_response_times(timings, ZERO_COST, 0)[0]
        costly = fp_response_times(
            timings, RtosOptions(context_switch_cycles=10), 25)[0]
        assert costly > cheap

    def test_fp_no_convergence_returns_none(self):
        # Utilisation > 1: the recurrence exceeds the validity limit.
        timings = [
            TaskTiming("a", period=10, deadline=10, priority=0,
                       wcet_cycles=8),
            TaskTiming("b", period=20, deadline=20, priority=1,
                       wcet_cycles=10),
        ]
        assert fp_response_times(timings, ZERO_COST, 0)[1] is None

    def test_fp_propagates_unbounded_inputs(self):
        timings = [
            TaskTiming("a", period=50, deadline=50, priority=0,
                       wcet_cycles=None),
            TaskTiming("b", period=100, deadline=100, priority=1,
                       wcet_cycles=10),
        ]
        bounds = fp_response_times(timings, ZERO_COST, 0)
        assert bounds[0] is None
        assert bounds[1] is None  # hp task has no C_j either
        assert fp_response_times(
            [timings[1]], ZERO_COST, None) == [None]

    def test_equal_priority_ties_break_by_index(self):
        # Task 1 has equal priority but larger index: task 0 is in hp(1),
        # task 1 is NOT in hp(0) (matches the dispatcher's (priority, index)
        # key), so only task 1 sees interference.
        timings = [
            TaskTiming("a", period=100, deadline=100, priority=0,
                       wcet_cycles=10),
            TaskTiming("b", period=100, deadline=100, priority=0,
                       wcet_cycles=10),
        ]
        assert fp_response_times(timings, ZERO_COST, 0) == [10, 20]

    def test_tdma_slot_bounds_are_table_period_multiples(self):
        timings = [
            TaskTiming("a", period=400, deadline=400, priority=0,
                       wcet_cycles=60),
            TaskTiming("b", period=400, deadline=400, priority=1,
                       wcet_cycles=30),
        ]
        bounds = tdma_slot_response_times(timings, ZERO_COST, 0)
        table_period = ZERO_COST.task_slot_cycles * 2
        assert all(bound is not None and bound % table_period == 0
                   for bound in bounds)
        # 60 cycles of demand need two 50-cycle slots -> 2 table periods.
        assert bounds[0] == 2 * table_period

    def test_tdma_slot_overhead_swallows_slot(self):
        timings = [TaskTiming("a", period=400, deadline=400, priority=0,
                              wcet_cycles=10)]
        options = RtosOptions(context_switch_cycles=60, task_slot_cycles=50)
        assert tdma_slot_response_times(timings, options, 0) == [None]
        assert tdma_slot_response_times(timings, ZERO_COST, None) == [None]


# ---------------------------------------------------------------------------
# Golden determinism: event vs reference scheduler, fast vs reference engine
# ---------------------------------------------------------------------------


def _run(tasksets, seed, **kwargs):
    system = RtosSystem(tasksets, seed=seed, **kwargs)
    result = system.run()
    return result, bytes(system.shared_memory._data)


class TestGoldenDeterminism:
    @pytest.mark.parametrize("arbiter", ["tdma", "round_robin", "priority"])
    @pytest.mark.parametrize("policy", ["fixed_priority", "tdma_slot"])
    def test_event_reference_bit_identical(self, tasksets_by_seed, arbiter,
                                           policy):
        tasksets = tasksets_by_seed(1)  # mixes periodic and sporadic tasks
        res_e, mem_e = _run(tasksets, 1, arbiter=arbiter, policy=policy,
                            scheduler="event")
        res_r, mem_r = _run(tasksets, 1, arbiter=arbiter, policy=policy,
                            scheduler="reference")
        assert res_e.scheduler == "event"
        assert res_r.scheduler == "reference"
        assert res_e.timing_dict() == res_r.timing_dict()
        assert mem_e == mem_r

    def test_fast_reference_engine_identical(self, tasksets_by_seed):
        tasksets = tasksets_by_seed(0, tasks_per_core=2)
        res_f, mem_f = _run(tasksets, 0, arbiter="round_robin",
                            engine="fast")
        res_r, mem_r = _run(tasksets, 0, arbiter="round_robin",
                            engine="reference")
        assert res_f.timing_dict() == res_r.timing_dict()
        assert mem_f == mem_r

    def test_jit_engine_identical(self, tasksets_by_seed, tmp_path,
                                  monkeypatch):
        """Generated code under preemption: jit-run task sets stay
        bit-identical to the micro-op engine (itself pinned above)."""
        monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path / "jit"))
        tasksets = tasksets_by_seed(1)
        for arbiter in ("tdma", "round_robin"):
            res_j, mem_j = _run(tasksets, 1, arbiter=arbiter, engine="jit")
            res_f, mem_f = _run(tasksets, 1, arbiter=arbiter, engine="fast")
            assert res_j.timing_dict() == res_f.timing_dict()
            assert mem_j == mem_f

    def test_interrupts_preempt_and_complete(self, tasksets_by_seed):
        result, _ = _run(tasksets_by_seed(1), 1)
        stats = result.scheduler_stats
        assert stats["scheduler"] == "event"
        per_core = {row["core"]: row for row in result.per_core}
        assert all(row["interrupts"] >= row["jobs_completed"] > 0
                   for row in per_core.values())
        # Every released job ran to completion within the horizon.
        assert all(task.completed == task.jobs for task in result.tasks)


# ---------------------------------------------------------------------------
# End-to-end response-time soundness
# ---------------------------------------------------------------------------


class TestResponseTimeSoundness:
    def test_acceptance_two_cores_six_tasks_fp_tdma(self, tasksets_by_seed):
        """The headline scenario: 2 cores x 3 tasks, fixed priority, TDMA
        arbitration — every task bounded, every observation within bound."""
        result, _ = _run(tasksets_by_seed(0), 0, arbiter="tdma",
                         policy="fixed_priority")
        assert len(result.tasks) == 6
        assert result.violations() == []
        assert all(task.rta_bound is not None for task in result.tasks)
        assert all(task.sound for task in result.tasks)
        assert all(task.max_response is not None for task in result.tasks)

    @pytest.mark.parametrize("seed", range(4))
    def test_property_observed_within_bounds(self, tasksets_by_seed, seed):
        """Seeded property: across random task sets (mixed kinds, random
        priorities at higher utilisation), no observed response time ever
        exceeds a computed bound."""
        tasksets = tasksets_by_seed(
            seed, utilisation=0.5,
            priority_assignment="random" if seed % 2 else "rate_monotonic")
        result, _ = _run(tasksets, seed)
        assert result.violations() == []
        for task in result.tasks:
            if task.rta_bound is not None and task.max_response is not None:
                assert task.max_response <= task.rta_bound

    def test_tdma_slot_policy_sound(self, tasksets_by_seed):
        # Wide slots + low utilisation so one slot covers a whole job and
        # the cyclic bound (a table-period multiple) fits within a period.
        tasksets = tasksets_by_seed(1, tasks_per_core=2, utilisation=0.25)
        result, _ = _run(tasksets, 1, policy="tdma_slot",
                         options=RtosOptions(task_slot_cycles=600))
        assert result.violations() == []
        bounded = [t for t in result.tasks if t.rta_bound is not None]
        assert len(bounded) == 4  # the cyclic analysis bounds every task
        assert all(t.sound for t in bounded)
        table_period = 2 * 600
        assert all(t.rta_bound % table_period == 0 for t in bounded)

    def test_priority_arbiter_unbounded_by_design(self, tasksets_by_seed):
        result, _ = _run(tasksets_by_seed(3, tasks_per_core=2), 3,
                         arbiter="priority")
        by_core = {}
        for task in result.tasks:
            by_core.setdefault(task.core, []).append(task)
        # Core 0 is the top-priority core: bounded and sound.  Core 1 has
        # no WCET bound under priority arbitration, hence no RTA bound.
        assert all(t.rta_bound is not None and t.sound
                   for t in by_core[0])
        assert all(t.rta_bound is None and t.wcet_cycles is None
                   for t in by_core[1])
        assert result.violations() == []


# ---------------------------------------------------------------------------
# System plumbing, metrics and functional checking
# ---------------------------------------------------------------------------


class TestSystemPlumbing:
    def test_validation(self, tasksets_by_seed):
        with pytest.raises(RtosError):
            RtosSystem([])
        with pytest.raises(RtosError):
            RtosSystem(tasksets_by_seed(0), policy="edf")
        with pytest.raises(RtosError):
            RtosSystem(tasksets_by_seed(0), horizon=-5)

    def test_idle_cycles_reported_distinct_from_stalls(self,
                                                       tasksets_by_seed):
        result, _ = _run(tasksets_by_seed(0), 0)
        sim_metrics = None
        for row in result.per_core:
            assert row["idle_cycles"] > 0
        # The aggregate SimResult carries idle cycles as its own metric,
        # not folded into the stall breakdown.
        system = RtosSystem(tasksets_by_seed(0), seed=0)
        system.run()
        sim_metrics = system._runtimes[0].result().metrics()
        assert sim_metrics["idle_cycles"] > 0
        assert sim_metrics["idle_cycles"] != sim_metrics["stall_cycles"]
        assert "idle cycles" in system._runtimes[0].result().summary()

    def test_functional_mismatch_raises(self):
        kernel = build_kernel("crc_step")
        import dataclasses
        task = task_from_kernel(kernel, period=2000, priority=0)
        broken = dataclasses.replace(task, expected_output=(0xdead,))
        system = RtosSystem([TaskSet((broken,))])
        with pytest.raises(RtosError, match="output"):
            system.run()

    def test_to_dict_schema_and_blocking(self, tasksets_by_seed):
        result, _ = _run(tasksets_by_seed(0), 0)
        data = result.to_dict()
        assert data["schema"] == "repro.rtos/v1"
        assert data["violations"] == 0
        assert len(data["tasks"]) == 6
        assert all(isinstance(b, int) for b in data["blocking"])
        assert "sound" in data["tasks"][0]
        # timing_dict drops only the scheduler identity.
        trimmed = result.timing_dict()
        assert "scheduler" not in trimmed and "makespan" in trimmed

    def test_cli_smoke(self, tmp_path, tasksets_by_seed, capsys):
        from repro.rtos.cli import main
        out = tmp_path / "rtos.json"
        code = main(["--cores", "2", "--tasks", "2", "--table",
                     "--json", str(out)])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "violations  : 0" in captured.out

    def test_explore_taskset_axes(self):
        from repro.explore import ExplorationRunner, ParameterSpace
        space = (ParameterSpace(["control_update"])
                 .axis("cores", [2])
                 .axis("taskset_utilisation", [0.4])
                 .axis("task_policy", ["fixed_priority"]))
        specs = space.specs()
        assert len(specs) == 1
        assert dict(specs[0].rtos)["utilisation"] == 0.4
        # rtos parameters are part of the cache key.
        plain = (ParameterSpace(["control_update"])
                 .axis("cores", [2])).specs()[0]
        assert specs[0].key() != plain.key()
        result = ExplorationRunner().run(space)
        record = result.results[0]
        assert record.rtos["violations"] == 0
        assert record.rtos["jobs_completed"] > 0
        assert record.cycles > 0

    def test_verify_rtos_cells(self):
        from repro.verify import ConformanceHarness, RtosScenario
        harness = ConformanceHarness()
        outcomes = harness.run_rtos_scenario(
            RtosScenario("cell", cores=2, tasks_per_core=2))
        assert len(outcomes) == 4
        assert all(o.sound for o in outcomes)
        assert all(o.variant == "rtos_fixed_priority" for o in outcomes)
