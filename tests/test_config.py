"""Tests for the processor configuration."""

import pytest

from repro.config import (
    MemoryConfig,
    MethodCacheConfig,
    PatmosConfig,
    PipelineConfig,
    SetAssocCacheConfig,
    StackCacheConfig,
)
from repro.errors import ConfigError


class TestMemoryConfig:
    def test_burst_cycles(self):
        mem = MemoryConfig(burst_words=4, setup_cycles=6, cycles_per_word=2)
        assert mem.burst_cycles() == 14

    def test_transfer_cycles_single_burst(self):
        mem = MemoryConfig(burst_words=4, setup_cycles=6, cycles_per_word=2)
        assert mem.transfer_cycles(1) == 14
        assert mem.transfer_cycles(4) == 14

    def test_transfer_cycles_multiple_bursts(self):
        mem = MemoryConfig(burst_words=4, setup_cycles=6, cycles_per_word=2)
        assert mem.transfer_cycles(5) == 28
        assert mem.transfer_cycles(8) == 28
        assert mem.transfer_cycles(9) == 42

    def test_transfer_cycles_zero(self):
        mem = MemoryConfig()
        assert mem.transfer_cycles(0) == 0

    def test_invalid_memory_config_rejected(self):
        with pytest.raises(ConfigError):
            PatmosConfig(memory=MemoryConfig(size_bytes=0))
        with pytest.raises(ConfigError):
            PatmosConfig(memory=MemoryConfig(cycles_per_word=0))


class TestMethodCacheConfig:
    def test_block_bytes(self):
        cache = MethodCacheConfig(size_bytes=4096, num_blocks=16)
        assert cache.block_bytes == 256

    def test_size_must_be_multiple_of_blocks(self):
        with pytest.raises(ConfigError):
            PatmosConfig(method_cache=MethodCacheConfig(size_bytes=1000,
                                                        num_blocks=16))

    def test_replacement_validated(self):
        with pytest.raises(ConfigError):
            PatmosConfig(method_cache=MethodCacheConfig(replacement="random"))


class TestCacheConfigs:
    def test_stack_cache_power_of_two(self):
        with pytest.raises(ConfigError):
            PatmosConfig(stack_cache=StackCacheConfig(size_bytes=1000))

    def test_set_assoc_geometry_validated(self):
        with pytest.raises(ConfigError):
            PatmosConfig(static_cache=SetAssocCacheConfig(
                size_bytes=100, line_bytes=16, associativity=2))

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            PatmosConfig(static_cache=SetAssocCacheConfig(
                size_bytes=2048, line_bytes=12, associativity=2))


class TestPatmosConfig:
    def test_default_config_is_valid(self):
        config = PatmosConfig()
        assert config.pipeline.dual_issue
        assert config.method_cache.size_bytes == 4096

    def test_single_issue_copy(self):
        config = PatmosConfig()
        single = config.single_issue()
        assert not single.pipeline.dual_issue
        assert config.pipeline.dual_issue  # original unchanged

    def test_with_replaces_fields(self):
        config = PatmosConfig()
        other = config.with_(pipeline=PipelineConfig(branch_delay_slots=3))
        assert other.pipeline.branch_delay_slots == 3
        assert config.pipeline.branch_delay_slots == 2

    def test_negative_delay_slots_rejected(self):
        with pytest.raises(ConfigError):
            PatmosConfig(pipeline=PipelineConfig(load_delay_slots=-1))

    def test_memory_map_must_fit(self):
        with pytest.raises(ConfigError):
            PatmosConfig(memory=MemoryConfig(size_bytes=1024))


class TestConfigSerialization:
    def test_round_trip(self):
        config = PatmosConfig(method_cache=MethodCacheConfig(size_bytes=2048),
                              pipeline=PipelineConfig(dual_issue=False))
        rebuilt = PatmosConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_from_dict_rejects_unknown_section(self):
        with pytest.raises(ConfigError):
            PatmosConfig.from_dict({"bogus": {}})

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(ConfigError):
            PatmosConfig.from_dict({"method_cache": {"bogus": 1}})

    def test_from_dict_validates(self):
        data = PatmosConfig().to_dict()
        data["method_cache"]["size_bytes"] = 1000  # not a block multiple
        with pytest.raises(ConfigError):
            PatmosConfig.from_dict(data)

    def test_content_hash_stable_and_content_addressed(self):
        assert PatmosConfig().content_hash() == PatmosConfig().content_hash()
        other = PatmosConfig(method_cache=MethodCacheConfig(size_bytes=2048))
        assert other.content_hash() != PatmosConfig().content_hash()
        # Equal content hashes equally, however the object was built.
        rebuilt = PatmosConfig.from_dict(other.to_dict())
        assert rebuilt.content_hash() == other.content_hash()

    def test_with_overrides(self):
        config = PatmosConfig().with_overrides({
            "method_cache.size_bytes": 8192,
            "pipeline.dual_issue": False,
        })
        assert config.method_cache.size_bytes == 8192
        assert not config.pipeline.dual_issue
        # The original default is untouched.
        assert PatmosConfig().method_cache.size_bytes == 4096

    def test_with_overrides_rejects_bad_paths(self):
        with pytest.raises(ConfigError):
            PatmosConfig().with_overrides({"nope.field": 1})
        with pytest.raises(ConfigError):
            PatmosConfig().with_overrides({"method_cache.nope": 1})
        with pytest.raises(ConfigError):
            PatmosConfig().with_overrides({"method_cache": 1})

    def test_with_overrides_revalidates(self):
        with pytest.raises(ConfigError):
            PatmosConfig().with_overrides({"stack_cache.size_bytes": 1000})

    def test_with_overrides_rejects_wrong_type(self):
        with pytest.raises(ConfigError, match="expects int"):
            PatmosConfig().with_overrides({"method_cache.size_bytes": "big"})
        with pytest.raises(ConfigError, match="expects int"):
            PatmosConfig().with_overrides({"method_cache.size_bytes": True})
        with pytest.raises(ConfigError, match="expects bool"):
            PatmosConfig().with_overrides({"pipeline.dual_issue": 1})
