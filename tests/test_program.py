"""Tests for the builder, CFG, call graph and linker."""

import pytest

from repro.config import PatmosConfig
from repro.errors import CompilerError, IsaError, LinkError, WcetError
from repro.isa import Opcode
from repro.program import (
    CallGraph,
    ControlFlowGraph,
    DataSpace,
    ProgramBuilder,
    link,
    parse_guard,
)
from repro.compiler import compile_program


def _branchy_function():
    b = ProgramBuilder("p")
    f = b.function("main")
    f.li("r1", 3)
    f.label("loop")
    f.emit("subi", "r1", "r1", 1)
    f.emit("cmpineq", "p1", "r1", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", 3)
    f.halt()
    return b.build()


class TestBuilder:
    def test_blocks_split_at_labels_and_branches(self):
        program = _branchy_function()
        main = program.function("main")
        labels = main.block_labels()
        assert "loop" in labels
        assert labels[0].startswith(".L")  # auto-generated entry block
        loop_block = main.block("loop")
        assert loop_block.terminator().opcode is Opcode.BR

    def test_loop_bound_attached(self):
        program = _branchy_function()
        assert program.function("main").block("loop").loop_bound == 3

    def test_loop_bound_for_unknown_label_rejected(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.halt()
        f.loop_bound("nowhere", 5)
        with pytest.raises(CompilerError):
            b.build()

    def test_duplicate_function_rejected(self):
        b = ProgramBuilder("p")
        b.function("main")
        with pytest.raises(CompilerError):
            b.function("main")

    def test_duplicate_data_rejected(self):
        b = ProgramBuilder("p")
        b.data("x", [1])
        with pytest.raises(CompilerError):
            b.data("x", [2])

    def test_unknown_call_target_rejected(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.call("missing")
        f.halt()
        with pytest.raises(LinkError):
            b.build()

    def test_li_small_uses_lil(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.li("r1", 100)
        f.li("r2", 1 << 20)
        f.li("r3", "symbol")
        f.halt()
        b.data("symbol", [0])
        program = b.build()
        opcodes = [i.opcode for i in program.function("main").instructions()]
        assert opcodes[0] is Opcode.LIL
        assert opcodes[1] is Opcode.ADDL
        assert opcodes[2] is Opcode.ADDL

    def test_parse_guard(self):
        assert parse_guard(None).is_always
        assert parse_guard("p3").pred == 3
        assert parse_guard("!p2").negate
        with pytest.raises(IsaError):
            parse_guard("p9")

    def test_emit_operand_count_checked(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        with pytest.raises(IsaError):
            f.emit("add", "r1", "r2")


class TestControlFlowGraph:
    def test_simple_loop_cfg(self):
        program = _branchy_function()
        cfg = ControlFlowGraph.build(program.function("main"))
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].header == "loop"
        assert loops[0].bound == 3
        assert cfg.is_reducible()

    def test_successors_of_conditional_branch(self):
        program = _branchy_function()
        cfg = ControlFlowGraph.build(program.function("main"))
        succs = cfg.successors("loop")
        assert "loop" in succs
        assert len(succs) == 2  # back edge and fall-through

    def test_nested_loops_detected(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.li("r1", 3)
        f.label("outer")
        f.li("r2", 4)
        f.label("inner")
        f.emit("subi", "r2", "r2", 1)
        f.emit("cmpineq", "p1", "r2", 0)
        f.br("inner", pred="p1")
        f.loop_bound("inner", 4)
        f.emit("subi", "r1", "r1", 1)
        f.emit("cmpineq", "p2", "r1", 0)
        f.br("outer", pred="p2")
        f.loop_bound("outer", 3)
        f.halt()
        cfg = ControlFlowGraph.build(b.build().function("main"))
        headers = {loop.header for loop in cfg.natural_loops()}
        assert headers == {"outer", "inner"}
        assert cfg.loop_nest_depth("inner") == 2
        assert cfg.loop_nest_depth("outer") == 1

    def test_dominators(self):
        program = _branchy_function()
        main = program.function("main")
        cfg = ControlFlowGraph.build(main)
        entry = main.entry_block().label
        assert cfg.dominates(entry, "loop")
        assert not cfg.dominates("loop", entry)

    def test_branch_to_unknown_label_rejected(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.br("nowhere")
        f.halt()
        program = b.build()
        with pytest.raises(WcetError):
            ControlFlowGraph.build(program.function("main"))


class TestCallGraph:
    def _call_chain(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.call("middle")
        f.halt()
        g = b.function("middle")
        g.call("leaf")
        g.ret()
        h = b.function("leaf")
        h.ret()
        return b.build()

    def test_callees_and_depth(self):
        cg = CallGraph.build(self._call_chain())
        assert cg.callees("main") == ["middle"]
        assert cg.callers("leaf") == ["middle"]
        assert not cg.is_recursive()
        assert cg.max_call_depth() == 3

    def test_call_paths(self):
        cg = CallGraph.build(self._call_chain())
        assert cg.call_paths() == [["main", "middle", "leaf"]]

    def test_recursion_detected(self):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.call("main")
        f.halt()
        cg = CallGraph.build(b.build())
        assert cg.is_recursive()
        with pytest.raises(WcetError):
            cg.max_call_depth()

    def test_topological_order_callees_first(self):
        cg = CallGraph.build(self._call_chain())
        order = cg.topological_order(root="main")
        assert order.index("leaf") < order.index("middle") < order.index("main")


class TestLinker:
    def test_linking_requires_scheduling(self):
        program = _branchy_function()
        with pytest.raises(LinkError):
            link(program)

    def test_layout_and_symbols(self, config: PatmosConfig):
        b = ProgramBuilder("p")
        b.data("table", [1, 2, 3], space=DataSpace.CONST)
        b.data("buffer", [0, 0], space=DataSpace.DATA)
        b.data("heap_obj", [7], space=DataSpace.HEAP)
        b.data("local_buf", [0], space=DataSpace.LOCAL)
        f = b.function("main")
        f.li("r1", "table")
        f.halt()
        g = b.function("helper")
        g.ret()
        compiled = compile_program(b.build(), config).program
        image = link(compiled, config)

        mm = config.memory_map
        assert image.symbol("table") == mm.const_base
        assert image.symbol("buffer") == mm.data_base
        assert image.symbol("heap_obj") == mm.heap_base
        assert image.symbol("local_buf") == 0
        assert image.entry_addr == mm.code_base
        helper = image.function_record("helper")
        main = image.function_record("main")
        assert helper.entry_addr == main.entry_addr + main.size_bytes
        assert image.initial_memory[mm.const_base + 4] == 2
        assert image.initial_scratchpad[0] == 0

    def test_function_containing(self, config):
        b = ProgramBuilder("p")
        f = b.function("main")
        f.li("r1", 1)
        f.halt()
        compiled = compile_program(b.build(), config).program
        image = link(compiled, config)
        record = image.function_containing(image.entry_addr + 4)
        assert record.name == "main"
        with pytest.raises(LinkError):
            image.function_containing(0x5)

    def test_symbolic_targets_resolved(self, config):
        b = ProgramBuilder("p")
        b.data("value", [42], space=DataSpace.CONST)
        f = b.function("main")
        f.li("r1", "value")
        f.call("helper")
        f.halt()
        g = b.function("helper")
        g.ret()
        compiled = compile_program(b.build(), config).program
        image = link(compiled, config)
        call_targets = [
            instr.target
            for bundle in image.bundles.values()
            for instr in bundle
            if instr.opcode is Opcode.CALL
        ]
        assert call_targets == [image.function_record("helper").entry_addr]

    def test_block_records(self, config):
        program = _branchy_function()
        compiled = compile_program(program, config).program
        image = link(compiled, config)
        record = image.block_record("main", "loop")
        assert image.block_at(record.addr) is record
        assert record.num_bundles >= 1
