"""Conformance suite for the shared memory-bus arbiters.

Every arbiter policy must satisfy the basic bus invariants (grants never lie
in the past, grants are monotonic when requests arrive in time order); on
top of that each policy has its defining property: TDMA grants are a pure
function of the schedule (never of the co-runners), round-robin is
work-conserving, priority serves the highest priority first and bounds only
that core.
"""

import pytest

from repro.config import MemoryConfig
from repro.errors import ConfigError
from repro.memory import (
    ARBITER_KINDS,
    MemoryArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    TdmaBusArbiter,
    TdmaSchedule,
    make_arbiter,
)

MEMORY = MemoryConfig(burst_words=4, setup_cycles=6, cycles_per_word=2)
BURST = MEMORY.burst_cycles()  # 14 cycles


def all_arbiters(num_cores=4):
    schedule = TdmaSchedule(num_cores=num_cores, slot_cycles=BURST)
    return [
        TdmaBusArbiter(schedule),
        RoundRobinArbiter(num_cores, max_transfer_cycles=BURST),
        PriorityArbiter(num_cores, max_transfer_cycles=BURST),
    ]


class TestBusInvariants:
    @pytest.mark.parametrize("arbiter", all_arbiters(),
                             ids=lambda a: a.kind)
    def test_grants_never_in_the_past(self, arbiter):
        for cycle in range(0, 3 * BURST, 3):
            core = cycle % arbiter.num_cores
            start = arbiter.request(core, cycle, BURST)
            assert start >= cycle

    @pytest.mark.parametrize("arbiter", all_arbiters(),
                             ids=lambda a: a.kind)
    def test_per_core_monotonic_grant_times(self, arbiter):
        """A core's grants never move backwards as its requests advance."""
        for core in range(arbiter.num_cores):
            grants = []
            cycle = core
            for _ in range(8):
                start = arbiter.request(core, cycle, BURST)
                grants.append(start)
                cycle = start + BURST + 3  # next request after completion
            assert grants == sorted(grants)

    def test_round_robin_grants_globally_monotonic(self):
        """The work-conserving FCFS arbiter serves time-ordered requests in
        order.

        (TDMA is deliberately exempt: its slots are fixed, so a later
        requester may catch an earlier slot of its own.  Priority is exempt
        too: a top-priority request overtakes the queue by design.)
        """
        arbiter = RoundRobinArbiter(4, max_transfer_cycles=BURST)
        grants = []
        cycle = 0
        for i in range(24):
            core = i % arbiter.num_cores
            grants.append(arbiter.request(core, cycle, BURST))
            cycle += 5  # requests arrive in global time order
        assert grants == sorted(grants)

    @pytest.mark.parametrize("arbiter", all_arbiters(),
                             ids=lambda a: a.kind)
    def test_stats_accounting(self, arbiter):
        port = arbiter.port(1)
        wait = port.arbitration_delay(3, BURST)
        assert port.requests == 1
        assert port.total_wait_cycles == wait
        assert port.events == 1
        summary = arbiter.stats_summary()
        assert summary["kind"] == arbiter.kind
        assert summary["requests"][1] == 1
        assert summary["busy_cycles"][1] == BURST

    @pytest.mark.parametrize("arbiter", all_arbiters(),
                             ids=lambda a: a.kind)
    def test_reset_forgets_grants(self, arbiter):
        arbiter.request(0, 0, BURST)
        arbiter.reset()
        assert arbiter.busy_until == 0
        assert all(s.requests == 0 for s in arbiter.stats)

    def test_invalid_core_rejected(self):
        arbiter = RoundRobinArbiter(2)
        with pytest.raises(ConfigError):
            arbiter.request(2, 0, BURST)
        with pytest.raises(ConfigError):
            arbiter.port(-1)

    def test_make_arbiter_kinds(self):
        for kind in ARBITER_KINDS:
            arbiter = make_arbiter(kind, 4, MEMORY)
            assert isinstance(arbiter, MemoryArbiter)
            assert arbiter.kind == kind
            assert arbiter.num_cores == 4
        with pytest.raises(ConfigError, match="unknown arbiter"):
            make_arbiter("fifo", 4, MEMORY)


class TestTdmaBusArbiter:
    def test_grants_independent_of_other_cores(self):
        """The decoupling property at the arbiter level: a core's grant for a
        given cycle never changes, whatever the other cores have done."""
        schedule = TdmaSchedule(num_cores=4, slot_cycles=BURST)
        quiet = TdmaBusArbiter(schedule)
        noisy = TdmaBusArbiter(schedule)
        for cycle in range(0, schedule.period):
            noisy.request((cycle + 1) % 4, cycle, BURST)  # co-runner traffic
        for cycle in range(0, 2 * schedule.period, 3):
            assert (quiet.grant_cycle(0, cycle, BURST)
                    == noisy.grant_cycle(0, cycle, BURST))

    def test_worst_case_wait_is_period_minus_slot(self):
        """Empirical worst case over a full period matches the closed form:
        ``period - slot`` for a minimal transfer (the schedule lets transfers
        start mid-slot when they still fit)."""
        schedule = TdmaSchedule(num_cores=4, slot_cycles=BURST)
        waits = [schedule.wait_cycles(0, cycle, 1)
                 for cycle in range(schedule.period)]
        assert max(waits) == schedule.period - schedule.slot_length(0)
        assert max(waits) == schedule.worst_case_wait(0, 1)
        # A full-slot transfer can only start at the slot start.
        full = [schedule.wait_cycles(0, cycle, BURST)
                for cycle in range(schedule.period)]
        assert max(full) == schedule.period - 1
        assert max(full) == schedule.worst_case_wait(0, BURST)
        assert schedule.worst_case_wait() == schedule.period - 1

    def test_mid_slot_start_when_transfer_fits(self):
        schedule = TdmaSchedule(num_cores=2, slot_cycles=20)
        # Cycle 5 is inside core 0's slot [0, 20); a 10-cycle transfer ends
        # at 15 <= 20, so it starts immediately.
        assert schedule.wait_cycles(0, 5, 10) == 0
        # A 16-cycle transfer would overrun the slot: wait for the next one.
        assert schedule.wait_cycles(0, 5, 16) == 35

    def test_weighted_slots(self):
        schedule = TdmaSchedule(num_cores=3, slot_cycles=10,
                                slot_weights=(1, 2, 1))
        assert schedule.period == 40
        assert schedule.slot_length(1) == 20
        assert [schedule.slot_offset(c) for c in range(3)] == [0, 10, 30]
        # Core 1's doubled slot admits a transfer core 0's cannot take.
        assert schedule.wait_cycles(1, 10, 20) == 0
        with pytest.raises(ConfigError, match="does not fit"):
            schedule.wait_cycles(0, 0, 20)
        # The weighted worst case still follows period - slot + T - 1.
        waits = [schedule.wait_cycles(1, cycle, 10)
                 for cycle in range(schedule.period)]
        assert max(waits) == schedule.worst_case_wait(1, 10) == 40 - 20 + 9

    def test_refined_bound_pins_empirical_worst_case(self):
        """Regression for the core-aware WCET interference model: for every
        core and every transfer length that fits its slot, the refined
        closed form ``period - slot + transfer - 1`` equals the *observed*
        worst case over a full period and never exceeds the blanket
        ``period - 1`` the analyzer used to charge."""
        schedule = TdmaSchedule(num_cores=3, slot_cycles=BURST,
                                slot_weights=(1, 2, 1))
        for core in range(schedule.num_cores):
            slot = schedule.slot_length(core)
            for transfer in (1, BURST // 2, BURST, slot):
                observed = max(schedule.wait_cycles(core, cycle, transfer)
                               for cycle in range(schedule.period))
                refined = schedule.worst_case_wait(core, transfer)
                assert refined == observed, (core, transfer)
                assert refined <= schedule.worst_case_wait()

    def test_bottleneck_core_is_smallest_slot(self):
        weighted = TdmaSchedule(num_cores=3, slot_cycles=10,
                                slot_weights=(2, 1, 3))
        assert weighted.bottleneck_core() == 1
        # Its refined bound dominates every other core's for any transfer.
        for transfer in (1, 5, 10):
            worst = weighted.worst_case_wait(weighted.bottleneck_core(),
                                             transfer)
            assert worst == max(weighted.worst_case_wait(core, transfer)
                                for core in range(3))
        # Unweighted schedules tie; the first core is the canonical pick.
        assert TdmaSchedule(num_cores=4, slot_cycles=10).bottleneck_core() == 0

    def test_weight_validation(self):
        with pytest.raises(ConfigError, match="slot weights"):
            TdmaSchedule(num_cores=2, slot_cycles=10, slot_weights=(1,))
        with pytest.raises(ConfigError, match="at least 1"):
            TdmaSchedule(num_cores=2, slot_cycles=10, slot_weights=(1, 0))

    def test_lists_normalised_to_tuples(self):
        schedule = TdmaSchedule(num_cores=2, slot_cycles=10,
                                slot_weights=[1, 2])
        assert schedule.slot_weights == (1, 2)
        assert hash(schedule)  # stays usable as a cache key


class TestRoundRobinArbiter:
    def test_work_conservation(self):
        """An idle bus is granted immediately; queued transfers drain
        back-to-back with no idle gap in between."""
        arbiter = RoundRobinArbiter(4, max_transfer_cycles=BURST)
        assert arbiter.request(2, 7, BURST) == 7  # idle bus: no wait
        # Three more requests while the bus is busy: served seamlessly.
        starts = [arbiter.request(core, 8, BURST) for core in (0, 1, 3)]
        assert starts == [7 + BURST, 7 + 2 * BURST, 7 + 3 * BURST]
        # After the queue drains the bus is idle again.
        assert arbiter.request(2, 7 + 4 * BURST + 5, BURST) == 7 + 4 * BURST + 5

    def test_worst_case_is_n_minus_one_transfers(self):
        arbiter = RoundRobinArbiter(4, max_transfer_cycles=BURST)
        assert arbiter.worst_case_delay(0) == 3 * BURST
        assert RoundRobinArbiter(4).worst_case_delay(0) is None

    def test_preference_rotates_after_last_grant(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.request(1, 0, BURST)
        assert arbiter.preference_order([0, 2, 3]) == [2, 3, 0]
        arbiter.request(3, 20, BURST)
        assert arbiter.preference_order([0, 1, 2]) == [0, 1, 2]


class TestPriorityArbiter:
    def test_preference_follows_priorities(self):
        arbiter = PriorityArbiter(3, priorities=(2, 0, 1))
        assert arbiter.preference_order([0, 1, 2]) == [1, 2, 0]
        assert arbiter.top_core() == 1

    def test_only_top_core_is_bounded(self):
        arbiter = PriorityArbiter(3, max_transfer_cycles=BURST)
        assert arbiter.worst_case_delay(0) == BURST
        assert arbiter.worst_case_delay(1) is None
        assert arbiter.worst_case_delay(2) is None

    def test_top_core_jumps_the_queue(self):
        """The top core waits for the in-flight transfer only, never for
        the queue of lower-priority grants behind it — that is what makes
        its worst case exactly one maximal transfer."""
        arbiter = PriorityArbiter(3, max_transfer_cycles=BURST)
        assert arbiter.request(2, 0, BURST) == 0          # bus 0..BURST
        assert arbiter.request(1, 5, BURST) == BURST      # queued behind
        # Top core at cycle 6: granted when the *in-flight* transfer ends,
        # ahead of core 1's queued grant, within its advertised bound.
        start = arbiter.request(0, 6, BURST)
        assert start == BURST
        assert start - 6 <= arbiter.worst_case_delay(0)

    def test_top_core_wait_never_exceeds_bound(self):
        """Hammering: whatever the lower-priority queue looks like, the
        top core's wait stays within one maximal transfer."""
        arbiter = PriorityArbiter(4, max_transfer_cycles=BURST)
        port = arbiter.port(0)
        cycle = 0
        for i in range(60):
            low = 1 + i % 3
            arbiter.request(low, cycle, BURST - (i % 5))
            if i % 4 == 0:
                wait = port.arbitration_delay(cycle + 1, BURST)
                assert wait <= arbiter.worst_case_delay(0)
            cycle += 3 + i % 7

    def test_priority_count_validated(self):
        with pytest.raises(ConfigError, match="priorities"):
            PriorityArbiter(3, priorities=(0, 1))
