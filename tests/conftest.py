"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.config import (
    MemoryConfig,
    MethodCacheConfig,
    PatmosConfig,
    SetAssocCacheConfig,
    StackCacheConfig,
)


@pytest.fixture
def config() -> PatmosConfig:
    """The default Patmos configuration."""
    return PatmosConfig()


@pytest.fixture
def small_config() -> PatmosConfig:
    """A configuration with tiny caches, for eviction/spill tests."""
    return PatmosConfig(
        method_cache=MethodCacheConfig(size_bytes=512, num_blocks=4),
        stack_cache=StackCacheConfig(size_bytes=128),
        static_cache=SetAssocCacheConfig(size_bytes=256, line_bytes=16,
                                         associativity=2),
        data_cache=SetAssocCacheConfig(size_bytes=128, line_bytes=16,
                                       associativity=4),
        memory=MemoryConfig(size_bytes=2 * 1024 * 1024, burst_words=4,
                            setup_cycles=6, cycles_per_word=2),
    )
