"""Tests for main memory, the memory controller, TDMA and the scratchpad."""

import pytest

from repro.config import MemoryConfig, ScratchpadConfig
from repro.errors import ConfigError, MemoryAccessError, SimulationError
from repro.memory import (
    MainMemory,
    MemoryController,
    RoundRobinArbiter,
    Scratchpad,
    TdmaArbiter,
    TdmaSchedule,
)


class TestMainMemory:
    def test_word_round_trip(self):
        mem = MainMemory(1024)
        mem.write_word(16, 0xDEADBEEF)
        assert mem.read_word(16) == 0xDEADBEEF

    def test_little_endian_subword_access(self):
        mem = MainMemory(64)
        mem.write_word(0, 0x01020304)
        assert mem.read(0, 1) == 0x04
        assert mem.read(2, 2) == 0x0102

    def test_signed_reads(self):
        mem = MainMemory(64)
        mem.write(0, 0xFF, 1)
        assert mem.read(0, 1, signed=True) == -1
        assert mem.read(0, 1, signed=False) == 255

    def test_uninitialised_reads_zero(self):
        mem = MainMemory(64)
        assert mem.read_word(32) == 0

    def test_misaligned_access_rejected(self):
        mem = MainMemory(64)
        with pytest.raises(MemoryAccessError):
            mem.read(2, 4)
        with pytest.raises(MemoryAccessError):
            mem.write(1, 0, 2)

    def test_out_of_range_rejected(self):
        mem = MainMemory(64)
        with pytest.raises(MemoryAccessError):
            mem.read_word(64)
        with pytest.raises(MemoryAccessError):
            mem.read_word(-4)

    def test_load_words(self):
        mem = MainMemory(64)
        mem.load_words({0: 1, 4: 2, 8: 3})
        assert mem.read_words(0, 3) == [1, 2, 3]


class TestScratchpad:
    def test_read_write_within_bounds(self):
        spm = Scratchpad(ScratchpadConfig(size_bytes=64))
        spm.write(8, 123, 4)
        assert spm.read(8, 4) == 123
        assert spm.accesses == 2

    def test_out_of_bounds_rejected(self):
        spm = Scratchpad(ScratchpadConfig(size_bytes=64))
        with pytest.raises(MemoryAccessError):
            spm.read(64, 4)


class TestMemoryController:
    def _controller(self, **kwargs):
        config = MemoryConfig(burst_words=4, setup_cycles=6, cycles_per_word=2)
        return MemoryController(MainMemory(4096), config, **kwargs)

    def test_read_block_latency(self):
        ctrl = self._controller()
        ctrl.memory.load_words({0: 10, 4: 20})
        values, latency = ctrl.read_block(0, 2, cycle=0)
        assert values == [10, 20]
        assert latency == 14

    def test_split_load_completes_after_latency(self):
        ctrl = self._controller()
        ctrl.memory.write_word(8, 77)
        ctrl.start_load(rd=3, addr=8, width=4, signed=False, cycle=0)
        assert ctrl.has_pending_load
        pending, stall = ctrl.wait_for_load(cycle=0)
        assert pending.value == 77
        assert stall == 14
        assert not ctrl.has_pending_load

    def test_split_load_wait_after_work_is_cheaper(self):
        ctrl = self._controller()
        ctrl.start_load(rd=1, addr=0, width=4, signed=False, cycle=0)
        _, stall = ctrl.wait_for_load(cycle=10)
        assert stall == 4

    def test_second_outstanding_load_rejected(self):
        ctrl = self._controller()
        ctrl.start_load(rd=1, addr=0, width=4, signed=False, cycle=0)
        with pytest.raises(SimulationError):
            ctrl.start_load(rd=2, addr=4, width=4, signed=False, cycle=1)

    def test_wait_without_pending_load(self):
        ctrl = self._controller()
        pending, stall = ctrl.wait_for_load(cycle=5)
        assert pending is None and stall == 0

    def test_store_buffer_absorbs_until_full(self):
        ctrl = self._controller(store_buffer_entries=2)
        assert ctrl.store(0, 1, 4, cycle=0) == 0
        assert ctrl.store(4, 2, 4, cycle=1) == 0
        # Buffer full: the third store stalls until the first drains.
        stall = ctrl.store(8, 3, 4, cycle=2)
        assert stall > 0
        assert ctrl.memory.read_word(8) == 3

    def test_zero_entry_buffer_always_stalls(self):
        ctrl = self._controller(store_buffer_entries=0)
        assert ctrl.store(0, 1, 4, cycle=0) == 14

    def test_drain_cycles(self):
        ctrl = self._controller(store_buffer_entries=4)
        ctrl.store(0, 1, 4, cycle=0)
        assert ctrl.drain_cycles(0) == 14
        assert ctrl.drain_cycles(100) == 0


class TestTdma:
    def test_slot_start_own_slot(self):
        schedule = TdmaSchedule(num_cores=4, slot_cycles=14)
        assert schedule.slot_start(0, 0) == 0
        assert schedule.slot_start(1, 0) == 14
        assert schedule.slot_start(0, 1) == 56

    def test_wait_cycles_bounded_by_period(self):
        schedule = TdmaSchedule(num_cores=4, slot_cycles=14)
        for cycle in range(0, 120, 7):
            for core in range(4):
                wait = schedule.wait_cycles(core, cycle, 14)
                assert 0 <= wait <= schedule.worst_case_wait()

    def test_worst_case_wait(self):
        schedule = TdmaSchedule(num_cores=4, slot_cycles=14)
        assert schedule.worst_case_wait() == 55
        assert schedule.period == 56

    def test_transfer_must_fit_slot(self):
        schedule = TdmaSchedule(num_cores=2, slot_cycles=10)
        with pytest.raises(ConfigError):
            schedule.wait_cycles(0, 0, 11)

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ConfigError):
            TdmaSchedule(num_cores=0, slot_cycles=10)
        with pytest.raises(ConfigError):
            TdmaSchedule(num_cores=2, slot_cycles=0)

    def test_arbiter_accumulates_stats(self):
        schedule = TdmaSchedule(num_cores=2, slot_cycles=14)
        arbiter = TdmaArbiter(schedule, core_id=1)
        wait = arbiter.arbitration_delay(cycle=0, transfer_cycles=14)
        assert wait == 14
        assert arbiter.requests == 1
        assert arbiter.total_wait_cycles == 14
        assert arbiter.worst_case_delay() == schedule.worst_case_wait()

    def test_round_robin_worst_case(self):
        arbiter = RoundRobinArbiter(num_cores=4, max_transfer_cycles=14)
        assert arbiter.worst_case_delay(0) == 42
        port = arbiter.port(0)
        # Idle bus: granted immediately (work conservation).
        assert port.arbitration_delay(0, 14) == 0
        # A competing transfer occupies the bus until cycle 28.
        arbiter.port(1).arbitration_delay(10, 14)
        assert port.arbitration_delay(15, 14) == 13
