"""Golden-equivalence harness: fast and jit engines vs reference interpreter.

The fast engine of :mod:`repro.sim.engine` and the generated-code jit
engine of :mod:`repro.sim.codegen` must be observationally identical to the
reference ``_step``/``_execute`` interpreter.  This suite proves it by
running every kernel of :mod:`repro.workloads` on all engines — functional
and cycle-accurate, strict on/off, trace on/off — and comparing the complete
:class:`~repro.sim.results.SimResult` (cycles, stalls by category, output,
block/call counts, cache statistics and the trace), plus targeted checks of
the error paths (strict schedule violations, stack-window violations,
``max_bundles``) and of the satellite fast paths the engine relies on.
"""

from __future__ import annotations

import pytest

from repro import (
    CompileOptions,
    CycleSimulator,
    FunctionalSimulator,
    PatmosConfig,
    compile_and_link,
)
from repro.errors import (
    MemoryAccessError,
    ScheduleViolation,
    SimulationError,
)
from repro.isa import Bundle, Instruction, Opcode
from repro.memory.main_memory import MainMemory
from repro.memory.scratchpad import Scratchpad
from repro.program import link
from repro.program.basic_block import BasicBlock
from repro.program.function import Function
from repro.program.program import Program
from repro.workloads.suite import KERNEL_BUILDERS, build_kernel

MODES = tuple((strict, trace) for strict in (False, True)
              for trace in (False, True))

#: The engines checked against the reference interpreter.
ENGINES = ("fast", "jit")


@pytest.fixture(autouse=True)
def _isolated_jit_cache(tmp_path, monkeypatch):
    """Never read or write the user's real on-disk jit cache."""
    monkeypatch.setenv("REPRO_JIT_CACHE_DIR", str(tmp_path / "jitcache"))
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)


def canonical(result):
    """Everything a SimResult observes, as one comparable value."""
    return {
        "cycles": result.cycles,
        "bundles": result.bundles,
        "instructions": result.instructions,
        "nops": result.nops,
        "output": result.output,
        "stalls": result.stalls.to_dict(),
        "block_counts": result.block_counts,
        "call_counts": result.call_counts,
        "cache_stats": result.cache_stats,
        "halted": result.halted,
        "trace": None if result.trace is None else
                 [(t.cycle, t.addr, t.text) for t in result.trace],
    }


@pytest.fixture(scope="module")
def compiled_kernels():
    config = PatmosConfig()
    compiled = {}
    for name in KERNEL_BUILDERS:
        kernel = build_kernel(name)
        image, _ = compile_and_link(kernel.program, config, CompileOptions())
        compiled[name] = (image, kernel)
    return config, compiled


@pytest.mark.parametrize("sim_cls", (FunctionalSimulator, CycleSimulator))
@pytest.mark.parametrize("name", sorted(KERNEL_BUILDERS))
def test_golden_equivalence(compiled_kernels, name, sim_cls):
    config, compiled = compiled_kernels
    image, kernel = compiled[name]
    for strict, trace in MODES:
        ref = sim_cls(image, config=config, strict=strict, trace=trace,
                      engine="reference").run()
        for engine in ENGINES:
            got = sim_cls(image, config=config, strict=strict, trace=trace,
                          engine=engine).run()
            assert canonical(got) == canonical(ref), \
                f"{name}: {engine} diverges with strict={strict}, " \
                f"trace={trace}"
            assert got.output == kernel.expected_output


def _raw_image(bundle_lists):
    instrs = [i for bundle in bundle_lists for i in bundle]
    block = BasicBlock(label="entry", instrs=instrs,
                       bundles=[Bundle(*b) for b in bundle_lists])
    function = Function(name="main", blocks=[block])
    program = Program(name="raw", functions={"main": function}, entry="main")
    return link(program, PatmosConfig())


class TestErrorPathEquivalence:
    def test_strict_violation_raised_by_both_engines(self):
        image = _raw_image([
            [Instruction(Opcode.LWC, rd=1, rs1=0, imm=0)],
            [Instruction(Opcode.ADD, rd=2, rs1=1, rs2=0)],
            [Instruction(Opcode.HALT)],
        ])
        for engine in ("reference",) + ENGINES:
            with pytest.raises(ScheduleViolation):
                FunctionalSimulator(image, strict=True, engine=engine).run()

    def test_non_strict_stale_read_identical(self):
        image = _raw_image([
            [Instruction(Opcode.LIL, rd=1, imm=999)],
            [Instruction(Opcode.LWC, rd=1, rs1=0, imm=0)],
            [Instruction(Opcode.ADD, rd=2, rs1=1, rs2=0)],
            [Instruction(Opcode.OUT, rs1=2)],
            [Instruction(Opcode.HALT)],
        ])
        outputs = [FunctionalSimulator(image, engine=engine).run().output
                   for engine in ("reference",) + ENGINES]
        assert all(output == [999] for output in outputs)

    def test_max_bundles_raised_by_both_engines(self):
        image = _raw_image([
            [Instruction(Opcode.BR, target="entry")],
            [Instruction(Opcode.NOP)],
            [Instruction(Opcode.NOP)],
        ])
        for engine in ("reference",) + ENGINES:
            with pytest.raises(SimulationError):
                FunctionalSimulator(image, engine=engine).run(max_bundles=100)

    def test_unknown_engine_rejected(self):
        image = _raw_image([[Instruction(Opcode.HALT)]])
        with pytest.raises(SimulationError):
            FunctionalSimulator(image, engine="turbo")


class TestDecodeReuse:
    def test_decode_is_cached_per_image(self):
        from repro.sim.engine import decode_image
        image = _raw_image([[Instruction(Opcode.HALT)]])
        pipeline = PatmosConfig().pipeline
        first = decode_image(image, pipeline, False, False)
        again = decode_image(image, pipeline, False, False)
        assert first is again
        strict = decode_image(image, pipeline, True, False)
        assert strict is not first

    def test_repeated_runs_share_state_correctly(self):
        config = PatmosConfig()
        kernel = build_kernel("vector_sum")
        image, _ = compile_and_link(kernel.program, config, CompileOptions())
        results = [CycleSimulator(image, config=config, strict=True).run()
                   for _ in range(2)]
        assert canonical(results[0]) == canonical(results[1])


class TestSatelliteFastPaths:
    def test_memory_word_fast_path(self):
        memory = MainMemory(64)
        memory.write_u32(8, 0xDEAD_BEEF)
        assert memory.read_u32(8) == 0xDEAD_BEEF
        assert memory.read(8, 4, signed=True) == -559038737
        with pytest.raises(MemoryAccessError):
            memory.read_u32(6)  # misaligned
        with pytest.raises(MemoryAccessError):
            memory.read_u32(64)  # out of range
        with pytest.raises(MemoryAccessError):
            memory.write_u32(-4, 1)

    def test_scratchpad_word_fast_path_counts_accesses(self):
        spad = Scratchpad(PatmosConfig().scratchpad)
        spad.write_u32(0, 7)
        assert spad.read_u32(0) == 7
        assert spad.accesses == 2
        with pytest.raises(MemoryAccessError):
            spad.read_u32(PatmosConfig().scratchpad.size_bytes)

    def test_function_containing_bisect(self):
        config = PatmosConfig()
        kernel = build_kernel("call_tree")
        image, _ = compile_and_link(kernel.program, config, CompileOptions())
        from repro.errors import LinkError
        for record in image.functions:
            assert image.function_containing(record.entry_addr) is record
            last = record.entry_addr + record.size_bytes - 4
            assert image.function_containing(last).name == record.name
        with pytest.raises(LinkError):
            image.function_containing(image.functions[0].entry_addr - 4)
        end = max(f.entry_addr + f.size_bytes for f in image.functions)
        with pytest.raises(LinkError):
            image.function_containing(end)
